"""Approximate link scheduling for scalability (paper section 7).

The paper's second future-work item: alternate link-scheduling
algorithms "with reduced implementation complexity ... to efficiently
handle a larger number of time-constrained packets".  The standard
technique is a *calendar queue*: quantise sorting keys into ``bins``
FIFO bins and always serve the lowest non-empty bin.  Priority
resolution drops from exact EDF to bin granularity, bounding extra
tardiness by one bin width, while the selection hardware shrinks from
``n - 1`` comparators to a ``bins``-input priority encoder.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.link_scheduler import ScheduledPacket
from repro.core.params import RouterParams


class ApproximateEdfScheduler:
    """Calendar-queue variant of the three-queue link discipline.

    Interface-compatible with
    :class:`~repro.core.link_scheduler.ReferenceLinkScheduler` so the
    slot simulator can swap it in.  On-time packets are binned by
    deadline; early packets are binned by logical arrival time in a
    second calendar.  Within a bin, service is FIFO.
    """

    def __init__(self, horizon: int = 0, bin_width: int = 4,
                 bins: int = 64) -> None:
        if bin_width < 1 or bins < 2:
            raise ValueError("bin_width and bins must be positive")
        self.horizon = horizon
        self.bin_width = bin_width
        self.bins = bins
        self._on_time: list[deque[ScheduledPacket]] = [
            deque() for _ in range(bins)
        ]
        self._early: list[tuple[int, ScheduledPacket]] = []
        self._be: deque[Any] = deque()
        self.tc_served = 0
        self.be_served = 0

    def _bin_of(self, deadline: int, now: int) -> int:
        laxity = max(0, deadline - now)
        return min(self.bins - 1, laxity // self.bin_width)

    # -- enqueue ------------------------------------------------------------

    def add_tc(self, packet: ScheduledPacket, now: int) -> None:
        if packet.arrival <= now:
            self._on_time[self._bin_of(packet.deadline, now)].append(packet)
        else:
            self._early.append((packet.arrival, packet))
            self._early.sort(key=lambda pair: pair[0])

    def add_be(self, item: Any) -> None:
        self._be.append(item)

    # -- service --------------------------------------------------------------

    def _promote(self, now: int) -> None:
        while self._early and self._early[0][0] <= now:
            __, packet = self._early.pop(0)
            self._on_time[self._bin_of(packet.deadline, now)].append(packet)

    def has_on_time(self, now: int) -> bool:
        self._promote(now)
        return any(self._on_time)

    def has_work(self, now: int) -> bool:
        if self.has_on_time(now) or self._be:
            return True
        return bool(self._early) and self._early[0][0] - now <= self.horizon

    def pick(self, now: int) -> Optional[tuple[str, Any]]:
        self._promote(now)
        for bin_queue in self._on_time:
            if bin_queue:
                self.tc_served += 1
                return ("TC", bin_queue.popleft())
        if self._be:
            self.be_served += 1
            return ("BE", self._be.popleft())
        if self._early and self._early[0][0] - now <= self.horizon:
            self.tc_served += 1
            return ("TC", self._early.pop(0)[1])
        return None

    @property
    def tc_backlog(self) -> int:
        return sum(len(q) for q in self._on_time) + len(self._early)

    @property
    def be_backlog(self) -> int:
        return len(self._be)


@dataclass(frozen=True)
class ApproxCostPoint:
    """Hardware cost / accuracy point for the approximate scheduler."""

    packets: int
    bins: int
    exact_comparators: int
    approx_selectors: int
    tardiness_bound: int

    @property
    def comparator_savings(self) -> float:
        if self.exact_comparators == 0:
            return 0.0
        return 1.0 - self.approx_selectors / self.exact_comparators


def cost_comparison(params: RouterParams, bins: int,
                    bin_width: int) -> ApproxCostPoint:
    """Exact tree vs. calendar queue selection-hardware comparison.

    The calendar queue replaces the per-leaf comparator tournament with
    a priority encoder over bins plus one insertion decoder; tardiness
    grows by at most one bin width (keys within a bin are unordered).
    """
    exact = params.tc_packet_slots - 1
    approx = bins + math.ceil(math.log2(bins))
    return ApproxCostPoint(
        packets=params.tc_packet_slots,
        bins=bins,
        exact_comparators=exact,
        approx_selectors=approx,
        tardiness_bound=bin_width,
    )
