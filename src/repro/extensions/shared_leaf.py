"""Comparator sharing between tree leaves (paper section 5.1).

The paper notes the comparator tree dominates chip area and sketches a
cheaper variant: "combine several leaf units into a single module with
a small memory to store the packets' deadlines and logical arrival
times; the router could sequence through each module's packets to
serialize access to a single comparator at the base of the tree."

:class:`SharedLeafDesign` models that trade-off: grouping ``group``
leaves per module divides the comparator count (and the fanout-buffer
load) by ``group`` but multiplies the tree's evaluation latency by the
serialisation factor.  :func:`design_space` sweeps the knob and reports
which configurations still meet the chip's scheduling-rate budget —
one decision per output port per packet time (bench A2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.comparator_tree import SchedulerPipeline
from repro.core.cost import COMPARATOR_T_PER_BIT, MUX_T_PER_BIT, SRAM_T_PER_BIT
from repro.core.params import OUTPUT_PORTS, RouterParams


@dataclass(frozen=True)
class SharedLeafDesign:
    """One point in the leaf-sharing design space."""

    params: RouterParams
    group: int           # leaves sharing one comparator module

    def __post_init__(self) -> None:
        if self.group < 1:
            raise ValueError("group must be at least 1")

    @property
    def modules(self) -> int:
        return math.ceil(self.params.tc_packet_slots / self.group)

    @property
    def comparator_count(self) -> int:
        """Tournament comparators over modules, plus one per module for
        the serialised local scan, plus the horizon comparator."""
        return max(0, self.modules - 1) + self.modules + 1

    @property
    def state_memory_bits(self) -> int:
        """Per-module SRAM replacing individual leaf latches."""
        leaf_bits = 2 * self.params.clock_bits + OUTPUT_PORTS
        return self.params.tc_packet_slots * leaf_bits

    @property
    def selection_transistors(self) -> int:
        kbits = self.params.key_bits
        idx_bits = max(1, math.ceil(math.log2(self.params.tc_packet_slots)))
        tree = self.comparator_count * (
            kbits * COMPARATOR_T_PER_BIT + idx_bits * MUX_T_PER_BIT
        )
        return tree + self.state_memory_bits * SRAM_T_PER_BIT

    @property
    def decision_latency_cycles(self) -> int:
        """Sequencing through a module serialises ``group`` compares."""
        base = self.params.pipeline_stages * SchedulerPipeline.STAGE_CYCLES
        return base + (self.group - 1)

    @property
    def decision_interval_cycles(self) -> int:
        """Initiation interval: the local scan bounds the pipeline."""
        return max(SchedulerPipeline.STAGE_CYCLES, self.group)

    def meets_rate(self, ports: int = OUTPUT_PORTS) -> bool:
        """One decision per port per packet-slot time (paper 4.2)."""
        budget = self.params.slot_cycles / ports
        return self.decision_interval_cycles <= budget


def design_space(params: RouterParams,
                 groups: list[int] | None = None) -> list[SharedLeafDesign]:
    """Sweep leaf-group sizes (1 = the paper's full tree)."""
    if groups is None:
        groups = [1, 2, 4, 8, 16]
    return [SharedLeafDesign(params=params, group=g) for g in groups]
