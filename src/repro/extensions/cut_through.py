"""Virtual cut-through for time-constrained traffic (paper section 7).

The paper's first future-work item: "the router can improve link
utilization and average latency by using virtual cut-through switching
for time-constrained traffic; this would permit an arriving packet to
proceed directly to its output link if no other packets have smaller
sorting keys."

The mechanism itself lives in the cycle-accurate router
(``RealTimeRouter(cut_through=True)``); this module provides the
experiment harness that quantifies the benefit: per-hop latency with
and without cut-through at low contention (bench A4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channels.spec import TrafficSpec
from repro.network.network import MeshNetwork


@dataclass(frozen=True)
class CutThroughResult:
    """Latency comparison for one configuration."""

    hops: int
    store_and_forward_cycles: float
    cut_through_cycles: float
    cut_throughs_taken: int

    @property
    def speedup(self) -> float:
        if self.cut_through_cycles == 0:
            return 1.0
        return self.store_and_forward_cycles / self.cut_through_cycles


def measure_linear_path(length: int = 4, messages: int = 5,
                        i_min: int = 40) -> CutThroughResult:
    """Latency along a 1-D chain with and without cut-through.

    Uses a generous per-hop delay budget and sends well-spaced on-time
    messages so the network is idle when each arrives — the regime
    where cut-through helps.  Horizons are irrelevant because packets
    travel on-time end to end (large ``i_min`` keeps them conformant).
    """
    results = {}
    for enabled in (False, True):
        net = MeshNetwork(length, 1, cut_through=enabled)
        # Generous horizons so downstream hops rarely hold an early
        # packet: isolates the switching-mode difference.  (The value
        # plus the per-hop delay bound must stay under the rollover
        # half-range, so 64 + d < 128.)
        from repro.core.ports import port_mask
        for router in net.routers.values():
            router.control.write_horizon(port_mask(0, 1, 2, 3, 4), 64)
        spec = TrafficSpec(i_min=i_min)
        # Tight per-hop bounds (d = 4 ticks) so the logical arrival
        # schedule tracks the physical transit and no hop holds the
        # packet back; what remains is pure switching-mode latency.
        channel = net.establish_channel((0, 0), (length - 1, 0), spec,
                                        deadline=4 * length)
        for _ in range(messages):
            net.send_message(channel)
            net.run_ticks(i_min)
        net.drain(max_cycles=200_000)
        summary = net.log.latency_summary("TC")
        cuts = sum(r.cut_through_count for r in net.routers.values())
        results[enabled] = (summary.mean, cuts)
    return CutThroughResult(
        hops=length,
        store_and_forward_cycles=results[False][0],
        cut_through_cycles=results[True][0],
        cut_throughs_taken=results[True][1],
    )
