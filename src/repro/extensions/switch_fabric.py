"""A QoS switch built from real-time router chips (paper section 7).

The paper closes by asking whether the chip can "serve as a building
block for constructing large, high-speed switches that support the
quality-of-service requirements of real-time and multimedia
applications".  This module builds that switch: an N-port fabric made
of a 2 x N mesh of router chips — external input ``i`` feeds the
injection ports of stage-0 chip ``(0, i)``; external output ``j``
drains the reception port of stage-1 chip ``(1, j)``.  A flow from
input ``i`` to output ``j`` crosses one horizontal link and then rides
the stage-1 column, so column links are the shared, contended resource
exactly as in an output-queued switch fabric.

Guaranteed-rate flows are real-time channels provisioned through the
ordinary admission machinery; datagram traffic uses the wormhole
best-effort class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.channels.manager import RealTimeChannel
from repro.channels.spec import TrafficSpec
from repro.core.params import RouterParams
from repro.network.network import MeshNetwork


@dataclass(frozen=True)
class SwitchReport:
    """Delivery statistics of one switch run."""

    guaranteed_delivered: int
    deadline_misses: int
    datagrams_delivered: int
    mean_guaranteed_latency: float
    mean_datagram_latency: float


class SwitchFabric:
    """An N-port switch assembled from 2N router chips."""

    def __init__(self, ports: int,
                 params: Optional[RouterParams] = None) -> None:
        if ports < 2:
            raise ValueError("a switch needs at least two ports")
        self.ports = ports
        self.network = MeshNetwork(2, ports, params)
        self.flows: list[RealTimeChannel] = []

    def _ingress(self, port: int) -> tuple[int, int]:
        if not 0 <= port < self.ports:
            raise ValueError(f"input port {port} out of range")
        return (0, port)

    def _egress(self, port: int) -> tuple[int, int]:
        if not 0 <= port < self.ports:
            raise ValueError(f"output port {port} out of range")
        return (1, port)

    # ------------------------------------------------------------------

    def provision_flow(self, in_port: int, out_port: int,
                       spec: TrafficSpec, deadline: int,
                       label: Optional[str] = None) -> RealTimeChannel:
        """Reserve a guaranteed-rate, bounded-delay flow."""
        channel = self.network.establish_channel(
            self._ingress(in_port), self._egress(out_port), spec,
            deadline,
            label=label or f"flow-{in_port}->{out_port}",
        )
        self.flows.append(channel)
        return channel

    def send(self, flow: RealTimeChannel, payload: bytes = b"") -> int:
        """Send one message on a provisioned flow."""
        return self.network.send_message(flow, payload)

    def send_datagram(self, in_port: int, out_port: int,
                      payload: bytes = b"") -> None:
        """Fire one best-effort datagram through the fabric."""
        self.network.send_best_effort(self._ingress(in_port),
                                      self._egress(out_port), payload)

    # ------------------------------------------------------------------

    def run_ticks(self, ticks: int) -> None:
        self.network.run_ticks(ticks)

    def drain(self, max_cycles: int = 1_000_000) -> None:
        self.network.drain(max_cycles=max_cycles)

    def report(self) -> SwitchReport:
        log = self.network.log
        tc = log.latency_summary("TC")
        be = log.latency_summary("BE")
        return SwitchReport(
            guaranteed_delivered=tc.count,
            deadline_misses=log.deadline_misses,
            datagrams_delivered=be.count,
            mean_guaranteed_latency=tc.mean,
            mean_datagram_latency=be.mean,
        )


def multimedia_switch_demo(ports: int = 4, rounds: int = 20,
                           i_min: int = 12) -> SwitchReport:
    """The section-7 scenario: guaranteed media flows plus datagrams.

    Provisions one guaranteed flow per input port (a shifted one-to-one
    pattern, like constant-rate media streams), saturates the fabric
    with datagram cross-traffic, and reports whether the guarantees
    held.
    """
    switch = SwitchFabric(ports)
    flows = []
    for in_port in range(ports):
        out_port = (in_port + 1) % ports
        hops = 1 + abs(out_port - in_port) + 1  # x link + column + rx
        flows.append(switch.provision_flow(
            in_port, out_port, TrafficSpec(i_min=i_min),
            deadline=i_min * (hops + 1),
        ))
    for round_index in range(rounds):
        for flow in flows:
            switch.send(flow)
        if round_index % 2 == 0:
            for in_port in range(ports):
                switch.send_datagram(in_port, (in_port + 2) % ports,
                                     payload=bytes(60))
        switch.run_ticks(i_min)
    switch.drain()
    return switch.report()
