"""The paper's future-work directions, built out (section 7, 5.1)."""

from repro.extensions.approx_scheduler import (
    ApproximateEdfScheduler,
    ApproxCostPoint,
    cost_comparison,
)
from repro.extensions.cut_through import CutThroughResult, measure_linear_path
from repro.extensions.shared_leaf import SharedLeafDesign, design_space
from repro.extensions.switch_fabric import (
    SwitchFabric,
    SwitchReport,
    multimedia_switch_demo,
)

__all__ = [
    "ApproxCostPoint",
    "ApproximateEdfScheduler",
    "CutThroughResult",
    "SharedLeafDesign",
    "SwitchFabric",
    "SwitchReport",
    "cost_comparison",
    "design_space",
    "measure_linear_path",
    "multimedia_switch_demo",
]
