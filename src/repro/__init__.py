"""repro — reproduction of Rexford, Hall & Shin's real-time router (ISCA 1996).

A production-quality Python library that rebuilds the paper's system
end to end:

* :mod:`repro.core` — the single-chip real-time router: deadline-driven
  packet switching for time-constrained traffic, wormhole switching for
  best-effort traffic, a shared pipelined comparator-tree scheduler,
  shared packet memory, and the control interface.
* :mod:`repro.channels` — the real-time channel abstraction: traffic
  specifications, logical arrival times, admission control, route
  selection and the protocol software that programs routers.
* :mod:`repro.network` — a 2-D mesh multicomputer simulator that wires
  routers together cycle by cycle.
* :mod:`repro.model` — a fast packet-slot-level simulator of the same
  link discipline for large parameter sweeps.
* :mod:`repro.traffic` — workload generators and spatial patterns.
* :mod:`repro.baselines` — comparison routers (FIFO, priority
  forwarding, virtual-channel priorities, software EDF cost model).
* :mod:`repro.extensions` — the paper's future-work directions
  (virtual cut-through, approximate schedulers, shared-leaf trees).
* :mod:`repro.analysis` — the delay-bound and buffer-bound algebra.

Quickstart::

    from repro import build_mesh_network, TrafficSpec

    net = build_mesh_network(4, 4)
    channel = net.establish_channel(
        source=(0, 0), destination=(3, 3),
        spec=TrafficSpec(i_min=40, s_max=18, b_max=1),
        deadline=400,
    )
    net.run(10_000)
"""

from repro.channels import (
    AdmissionError,
    ChannelManager,
    FlowRequirements,
    RealTimeChannel,
    TrafficSpec,
)
from repro.core import (
    BestEffortPacket,
    RealTimeRouter,
    RouterParams,
    TimeConstrainedPacket,
    estimate_cost,
)
from repro.network import MeshNetwork, build_mesh_network

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "BestEffortPacket",
    "ChannelManager",
    "FlowRequirements",
    "MeshNetwork",
    "RealTimeChannel",
    "RealTimeRouter",
    "RouterParams",
    "TimeConstrainedPacket",
    "TrafficSpec",
    "__version__",
    "build_mesh_network",
    "estimate_cost",
]
