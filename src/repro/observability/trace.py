"""Packet-lifecycle tracing: structured events on an opt-in ring buffer.

Every stage a packet can pass through stamps one event with the cycle
it happened on:

========================  =====================================================
event                     emitted when
========================  =====================================================
``enqueue``               the message/packet is handed to the source host
``release``               the source regulator releases it into the router
``buffer``                a router buffers it (``queue`` 1/3 for on-time/early
                          time-constrained, 2 for a routed best-effort worm)
``promote``               a model-level scheduler moves it from queue 3 to 1
``horizon_defer``         an early winner is held back by the link horizon
                          (or by waiting best-effort flits)
``link_win``              the comparator tree's winner starts transmitting
``retransmit``            the recovery layer re-sends it
``corrupt_drop``          a checksum mismatch drops it
``deliver``               the destination host logs the delivery
========================  =====================================================

The control-plane service layer stamps channel-lifecycle events on the
same ring (``packet_id`` is ``None``; ``label`` names the channel):

========================  =====================================================
event                     emitted when
========================  =====================================================
``setup_request``         a churn setup request reaches the service
``setup_accept``          the request is admitted as a real-time channel
``setup_reject``          the request is refused (``info`` has the reason)
``setup_queue``           the request is parked for bounded retry
``setup_demote``          the request (or an admitted channel, during
                          overload) is demoted to best-effort delivery
``channel_teardown``      an expired flow's channel state is released
``overload_enter``        the overload manager starts shedding load
``overload_exit``         occupancy drained; normal admission resumes
========================  =====================================================

Tracing is **opt-in**: components keep a ``tracer`` attribute that is
``None`` by default, and every emit site is guarded by a plain
``if tracer is not None`` — the disabled hot path allocates nothing
and costs one attribute test.  When enabled, events land in a bounded
ring buffer (oldest evicted first) and can be exported as JSONL via
:func:`repro.reporting.export.write_trace_jsonl`.
"""

from __future__ import annotations

from typing import Iterator, Optional

ENQUEUE = "enqueue"
RELEASE = "release"
BUFFER = "buffer"
PROMOTE = "promote"
HORIZON_DEFER = "horizon_defer"
LINK_WIN = "link_win"
RETRANSMIT = "retransmit"
CORRUPT_DROP = "corrupt_drop"
DELIVER = "deliver"

# Control-plane service lifecycle (no packet identity).
SETUP_REQUEST = "setup_request"
SETUP_ACCEPT = "setup_accept"
SETUP_REJECT = "setup_reject"
SETUP_QUEUE = "setup_queue"
SETUP_DEMOTE = "setup_demote"
CHANNEL_TEARDOWN = "channel_teardown"
OVERLOAD_ENTER = "overload_enter"
OVERLOAD_EXIT = "overload_exit"

#: Field order of the event tuples stored in the ring (and of the
#: JSONL objects exported from them).
EVENT_FIELDS = (
    "cycle", "event", "packet_id", "node", "port", "traffic_class",
    "label", "sequence", "queue", "info",
)


class PacketTracer:
    """Bounded ring buffer of packet-lifecycle events.

    Events are stored as plain tuples (see :data:`EVENT_FIELDS`) to
    keep the enabled path cheap; :meth:`events` re-inflates them into
    dictionaries for export and analysis.  ``dropped`` counts events
    evicted after the ring wrapped — a non-zero value means the buffer
    was sized too small for the run being traced.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._ring: list[Optional[tuple]] = [None] * capacity
        self._next = 0
        self.emitted = 0
        self.dropped = 0

    def emit(self, cycle: int, event: str, *,
             meta: object = None,
             node: object = None,
             port: Optional[int] = None,
             traffic_class: Optional[str] = None,
             label: Optional[str] = None,
             sequence: Optional[int] = None,
             queue: Optional[int] = None,
             info: Optional[dict] = None) -> None:
        """Record one event (packet identity defaulted from ``meta``)."""
        packet_id = None
        if meta is not None:
            packet_id = meta.packet_id
            if label is None:
                label = meta.connection_label
            if sequence is None:
                sequence = meta.sequence
        self.emit_raw((cycle, event, packet_id, node, port,
                       traffic_class, label, sequence, queue, info))

    def emit_raw(self, item: tuple) -> None:
        """Record one pre-built event tuple (see :data:`EVENT_FIELDS`).

        The extension point sharded execution overrides to defer
        in-step emissions for its deterministic cross-worker merge.
        """
        slot = self._next
        if self._ring[slot] is not None:
            self.dropped += 1
        self._ring[slot] = item
        self._next = (slot + 1) % self.capacity
        self.emitted += 1

    def __len__(self) -> int:
        return min(self.emitted, self.capacity)

    def _iter_tuples(self) -> Iterator[tuple]:
        if self.emitted > self.capacity:
            order = (*range(self._next, self.capacity),
                     *range(self._next))
        else:
            order = range(self._next)
        for index in order:
            item = self._ring[index]
            if item is not None:
                yield item

    def events(self) -> list[dict]:
        """All buffered events, oldest first, as field dictionaries."""
        return [dict(zip(EVENT_FIELDS, item))
                for item in self._iter_tuples()]

    def of_packet(self, packet_id: int) -> list[dict]:
        """The buffered lifecycle of one packet, oldest event first."""
        return [event for event in self.events()
                if event["packet_id"] == packet_id]

    def counts(self) -> dict[str, int]:
        """Buffered events tallied by event type."""
        tally: dict[str, int] = {}
        for item in self._iter_tuples():
            tally[item[1]] = tally.get(item[1], 0) + 1
        return dict(sorted(tally.items()))

    def clear(self) -> None:
        self._ring = [None] * self.capacity
        self._next = 0
        self.emitted = 0
        self.dropped = 0

    # -- checkpointing -----------------------------------------------------

    def state(self) -> dict:
        """Checkpoint state, including the full ring contents.

        Event tuples are JSON-serialisable by construction (cycles,
        strings, node coordinates, small info dicts), so the ring is
        saved verbatim.  Tuples inside events come back as lists; the
        ``node`` field is re-tupled on load — JSONL export renders
        tuples and lists identically, which is the equality the resume
        guarantee is stated in.  ``info`` dicts are saved as ordered
        key/value pairs: the checkpoint file is canonical JSON (sorted
        keys), which would otherwise lose the insertion order the
        exported JSONL preserves.
        """
        return {
            "capacity": self.capacity,
            "next": self._next,
            "emitted": self.emitted,
            "dropped": self.dropped,
            "ring": [
                None if item is None else [
                    *item[:9],
                    (list(item[9].items())
                     if isinstance(item[9], dict) else item[9]),
                ]
                for item in self._ring
            ],
        }

    def load_state(self, state: dict) -> None:
        if state["capacity"] != self.capacity:
            raise ValueError("tracer state has different capacity")
        ring: list[Optional[tuple]] = []
        for item in state["ring"]:
            if item is None:
                ring.append(None)
                continue
            node = item[3]
            if isinstance(node, list):
                node = tuple(node)
            info = item[9]
            if isinstance(info, list):
                info = {key: value for key, value in info}
            ring.append((item[0], item[1], item[2], node,
                         *item[4:9], info))
        self._ring = ring
        self._next = state["next"]
        self.emitted = state["emitted"]
        self.dropped = state["dropped"]
