"""Shared instrumentation layer: metrics registry + packet tracing.

Three pieces (see ``docs/observability.md``):

* :mod:`repro.observability.registry` — named counters, gauges and
  fixed-bucket histograms, plus zero-overhead *probes* that sample
  counters living as plain attributes on simulator objects.
* :mod:`repro.observability.trace` — the packet-lifecycle tracer: an
  opt-in ring buffer of structured per-packet events (enqueue, queue
  placement, promotion, horizon deferral, link win, retransmit,
  corruption drop, delivery) with cycle timestamps.
* :mod:`repro.observability.snapshot` — periodic registry snapshots as
  an engine component, firing on exact scheduled cycles even across
  fast-forwarded idle spans.

:class:`~repro.network.network.MeshNetwork` wires a registry by
default (``net.metrics``) and exposes ``enable_tracing`` /
``enable_snapshots``; the ``trace`` and ``metrics`` CLI subcommands
drive both from a shell.
"""

from repro.observability.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.snapshot import SnapshotEmitter
from repro.observability.trace import (
    BUFFER,
    CHANNEL_TEARDOWN,
    CORRUPT_DROP,
    DELIVER,
    ENQUEUE,
    EVENT_FIELDS,
    HORIZON_DEFER,
    LINK_WIN,
    OVERLOAD_ENTER,
    OVERLOAD_EXIT,
    PROMOTE,
    RELEASE,
    RETRANSMIT,
    SETUP_ACCEPT,
    SETUP_DEMOTE,
    SETUP_QUEUE,
    SETUP_REJECT,
    SETUP_REQUEST,
    PacketTracer,
)

__all__ = [
    "BUFFER",
    "CHANNEL_TEARDOWN",
    "CORRUPT_DROP",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DELIVER",
    "ENQUEUE",
    "EVENT_FIELDS",
    "Gauge",
    "HORIZON_DEFER",
    "Histogram",
    "LINK_WIN",
    "MetricsRegistry",
    "OVERLOAD_ENTER",
    "OVERLOAD_EXIT",
    "PROMOTE",
    "PacketTracer",
    "RELEASE",
    "RETRANSMIT",
    "SETUP_ACCEPT",
    "SETUP_DEMOTE",
    "SETUP_QUEUE",
    "SETUP_REJECT",
    "SETUP_REQUEST",
    "SnapshotEmitter",
]
