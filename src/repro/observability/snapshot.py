"""Periodic metrics snapshots, fast-forward aware.

:class:`SnapshotEmitter` is a :class:`~repro.network.engine.SynchronousEngine`
component: registered alongside the routers, it samples a
:class:`~repro.observability.registry.MetricsRegistry` every ``period``
cycles.  Like the fault watchdog, it implements the engine's
``next_event_cycle`` contract, so snapshots fire on their *exact*
scheduled cycles even when the engine fast-forwards across idle spans —
the jump stops at the snapshot cycle instead of skipping over it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.observability.registry import MetricsRegistry


class SnapshotEmitter:
    """Engine component that records registry snapshots on a period."""

    def __init__(
        self,
        registry: MetricsRegistry,
        period: int,
        *,
        start_cycle: int = 0,
        sink: Optional[Callable[[dict], None]] = None,
        keep: Optional[int] = None,
    ) -> None:
        if period < 1:
            raise ValueError("snapshot period must be positive")
        if keep is not None and keep < 1:
            raise ValueError("keep must be positive (or None for all)")
        self.registry = registry
        self.period = period
        self.sink = sink
        self.keep = keep
        #: Recorded snapshots, oldest first (bounded by ``keep``).
        self.snapshots: list[dict] = []
        # First snapshot lands one full period after installation.
        self._next_due = start_cycle + period

    def step(self, cycle: int) -> None:
        if cycle < self._next_due:
            return
        snapshot = self.registry.snapshot()
        snapshot["cycle"] = cycle
        self.snapshots.append(snapshot)
        if self.keep is not None and len(self.snapshots) > self.keep:
            del self.snapshots[0]
        if self.sink is not None:
            self.sink(snapshot)
        # Next due point strictly after this cycle, on the same grid
        # (a stall past one due point yields one catch-up snapshot,
        # not a burst).
        while self._next_due <= cycle:
            self._next_due += self.period

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Engine fast-forward contract (see ``docs/performance.md``).

        The emitter's only self-scheduled work is the next snapshot;
        returning its cycle makes any fast-forward jump stop exactly
        there, so snapshot cadence is identical in both engine modes.
        """
        return max(cycle, self._next_due)

    @property
    def next_due_cycle(self) -> int:
        return self._next_due

    def latest(self) -> Optional[dict]:
        return self.snapshots[-1] if self.snapshots else None
