"""Metrics registry: counters, gauges and fixed-bucket histograms.

One registry gathers every number the simulator exposes — engine
cycle accounting, scheduler cache hits, fault/recovery counters,
delivery statistics — behind a single named namespace, so snapshots,
the CLI and tests all read the same source of truth.

Two kinds of instruments coexist:

* **Owned instruments** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) live inside the registry and are updated through
  their methods.  Histograms use fixed bucket boundaries and answer
  p50/p95/p99/max queries from the bucket counts.
* **Probes** wrap counters that already exist as plain attributes on
  simulator objects (``engine.cycles_stepped``, a comparator tree's
  ``keys_reused``, the fault counters).  The owning object keeps its
  attribute API — and its zero-overhead hot path — unchanged; the
  registry samples the attribute only when a snapshot is taken.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Callable, Optional, Union

#: Default histogram bucket upper bounds (simulation cycles): roughly
#: geometric, sized for end-to-end latencies on meshes up to ~16x16.
DEFAULT_LATENCY_BUCKETS = (
    32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
)


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        self.value += amount


class Gauge:
    """A named value that can move in either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    ``buckets`` is an ascending sequence of upper bounds; one implicit
    overflow bucket catches values above the top bound.  Exact minimum
    and maximum are tracked alongside the bucket counts, so percentile
    answers are always clamped into the observed value range:

    * an **empty** histogram answers ``None`` to every percentile
      query (and reports ``count == 0``) rather than raising;
    * a **single-sample** histogram answers that exact sample for any
      percentile (the clamp collapses the bucket bound to it);
    * values **above the top bucket** land in the overflow bucket and
      percentile queries that fall there answer the observed maximum —
      never infinity, never a bound that was not seen.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 buckets: Optional[tuple[int, ...]] = None) -> None:
        bounds = tuple(buckets if buckets is not None
                       else DEFAULT_LATENCY_BUCKETS)
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly ascending")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, pct: float) -> Optional[float]:
        """Estimate the ``pct``-th percentile from the bucket counts.

        Returns ``None`` on an empty histogram.  The answer is the
        upper bound of the bucket containing the target rank, clamped
        to the observed ``[min, max]`` range (so single samples come
        back exactly, and overflow-bucket ranks answer the maximum).
        """
        if not 0 <= pct <= 100:
            raise ValueError("percentile must be between 0 and 100")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(pct / 100.0 * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                bound = (self.bounds[index] if index < len(self.bounds)
                         else self.max)
                return float(min(max(bound, self.min), self.max))
        return float(self.max)  # unreachable; defensive

    @property
    def p50(self) -> Optional[float]:
        return self.percentile(50)

    @property
    def p95(self) -> Optional[float]:
        return self.percentile(95)

    @property
    def p99(self) -> Optional[float]:
        return self.percentile(99)

    def summary(self) -> dict:
        """The histogram reduced to its headline numbers."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    # -- serialisation and merging (campaign result shards) ---------------

    def state(self) -> dict:
        """Full JSON-serialisable state (not just the summary).

        Unlike :meth:`summary`, the state round-trips: a histogram
        rebuilt by :meth:`from_state` answers every percentile query
        identically.  Campaign workers ship histogram states across
        process boundaries so the aggregator can *merge* runs and
        answer campaign-wide percentiles, which per-run summaries
        cannot provide.
        """
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_state(cls, name: str, state: dict) -> "Histogram":
        """Inverse of :meth:`state`."""
        histogram = cls(name, tuple(state["bounds"]))
        histogram.load_state(state)
        return histogram

    def load_state(self, state: dict) -> None:
        """Overlay saved state onto this instance, in place.

        Checkpoint restore must mutate the *existing* histogram rather
        than substitute a rebuilt one: the delivery log and the metrics
        registry deliberately share histogram objects, and replacing
        one side's reference would silently fork the other.
        """
        if tuple(state["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram {self.name!r} state has different buckets"
            )
        counts = list(state["counts"])
        if len(counts) != len(self.counts):
            raise ValueError("histogram state has wrong bucket count")
        self.counts = counts
        self.count = state["count"]
        self.total = state["total"]
        self.min = state["min"]
        self.max = state["max"]

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Both histograms must use identical bucket bounds (merging
        across different bucketings would silently misplace counts).
        """
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.bounds} vs {other.bounds}"
            )
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max


class MetricsRegistry:
    """Named instruments plus live probes, snapshotted on demand."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._probes: dict[str, Callable[[], Union[int, float]]] = {}

    # -- instrument creation (get-or-create, idempotent) -----------------

    def counter(self, name: str) -> Counter:
        self._check_free(name, self._counters)
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        self._check_free(name, self._gauges)
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str,
                  buckets: Optional[tuple[int, ...]] = None) -> Histogram:
        self._check_free(name, self._histograms)
        existing = self._histograms.get(name)
        if existing is not None:
            if buckets is not None and tuple(buckets) != existing.bounds:
                raise ValueError(
                    f"histogram {name!r} already exists with different "
                    f"buckets"
                )
            return existing
        created = Histogram(name, buckets)
        self._histograms[name] = created
        return created

    def register_probe(self, name: str,
                       fn: Callable[[], Union[int, float]]) -> None:
        """Expose an existing attribute/derived value under ``name``.

        The callable is evaluated at snapshot time only, so probing an
        object adds nothing to its hot path.  Re-registering a name
        replaces the previous probe (components detach and reattach).
        """
        self._check_free(name, self._probes)
        self._probes[name] = fn

    def _check_free(self, name: str, own: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms,
                     self._probes):
            if kind is not own and name in kind:
                raise ValueError(
                    f"metric name {name!r} already registered as a "
                    f"different instrument kind"
                )

    # -- reading ----------------------------------------------------------

    def value(self, name: str) -> Union[int, float, dict, None]:
        """Current value of one metric (histograms: their summary)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        if name in self._histograms:
            return self._histograms[name].summary()
        if name in self._probes:
            return self._probes[name]()
        raise KeyError(name)

    def names(self) -> list[str]:
        return sorted([*self._counters, *self._gauges,
                       *self._histograms, *self._probes])

    def snapshot(self) -> dict:
        """One flat point-in-time reading of every registered metric."""
        out: dict = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, probe in self._probes.items():
            out[name] = probe()
        for name, hist in self._histograms.items():
            out[name] = hist.summary()
        return dict(sorted(out.items()))

    # -- checkpointing -----------------------------------------------------

    def state(self) -> dict:
        """Owned-instrument state.  Probes are live views onto other
        components' attributes and are re-registered when the network
        is rebuilt, so only their *sources* checkpoint, not the probes.
        """
        return {
            "counters": {name: counter.value
                         for name, counter in sorted(self._counters.items())},
            "gauges": {name: gauge.value
                       for name, gauge in sorted(self._gauges.items())},
            "histograms": {name: hist.state()
                           for name, hist in sorted(self._histograms.items())},
        }

    def load_state(self, state: dict) -> None:
        """Overlay saved values onto this registry's instruments.

        Existing histograms are mutated in place (they may be shared
        with the delivery log); instruments that only exist in the
        saved state are created.
        """
        for name, value in state["counters"].items():
            self.counter(name).value = value
        for name, value in state["gauges"].items():
            self.gauge(name).value = value
        for name, hist_state in state["histograms"].items():
            hist = self.histogram(name, tuple(hist_state["bounds"]))
            hist.load_state(hist_state)

    def rows(self) -> list[tuple[str, str]]:
        """Snapshot rendered as (name, value) display rows."""
        rows: list[tuple[str, str]] = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                if value["count"]:
                    rendered = (
                        f"n={value['count']} mean={value['mean']:.1f} "
                        f"p50={value['p50']:.0f} p95={value['p95']:.0f} "
                        f"p99={value['p99']:.0f} max={value['max']:.0f}"
                    )
                else:
                    rendered = "n=0"
            else:
                rendered = str(value)
            rows.append((name, rendered))
        return rows
