"""Delay- and buffer-bound algebra of the real-time channel model.

Closed-form results from paper section 2 that the simulators are
validated against:

* end-to-end bound: a message with source logical arrival time ``l0``
  reaches its destination by ``l0 + sum(d_j)``;
* earliest possible arrival at hop ``j``:
  ``l_j - (h_{j-1} + d_{j-1})`` (horizon plus upstream delay bound);
* per-connection buffer demand at hop ``j``:
  ``ceil((h_{j-1} + d_{j-1} + d_j) / i_min)`` messages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.channels.spec import TrafficSpec


@dataclass(frozen=True)
class HopBound:
    """Derived timing window of one hop."""

    logical_arrival_offset: int   # l_j - l0
    earliest_offset: int          # earliest physical arrival - l0
    deadline_offset: int          # local deadline - l0
    buffers: int                  # packet buffers needed at this hop


def hop_bounds(spec: TrafficSpec, local_delays: list[int],
               horizons: list[int] | None = None) -> list[HopBound]:
    """Timing windows and buffer demands along a route.

    ``horizons[j]`` is the horizon of the link *at hop j* (used by the
    downstream hop's earliest-arrival window).  Defaults to all zeros.
    """
    count = len(local_delays)
    if horizons is None:
        horizons = [0] * count
    if len(horizons) != count:
        raise ValueError("one horizon per hop required")
    bounds = []
    arrival_offset = 0
    for j, delay in enumerate(local_delays):
        prev_h = horizons[j - 1] if j > 0 else 0
        prev_d = local_delays[j - 1] if j > 0 else 0
        earliest = arrival_offset - (prev_h + prev_d)
        window = prev_h + prev_d + delay
        buffers = (max(1, math.ceil(window / spec.i_min))
                   + (spec.b_max - 1)) * spec.packets_per_message
        bounds.append(HopBound(
            logical_arrival_offset=arrival_offset,
            earliest_offset=earliest,
            deadline_offset=arrival_offset + delay,
            buffers=buffers,
        ))
        arrival_offset += delay
    return bounds


def end_to_end_bound(local_delays: list[int]) -> int:
    """Worst-case delivery offset from the source logical arrival."""
    return sum(local_delays)


def worst_case_backlog(spec: TrafficSpec, window: int) -> int:
    """Maximum packets of one connection inside a time window."""
    return spec.max_messages(window) * spec.packets_per_message


def horizon_buffer_tradeoff(spec: TrafficSpec, upstream_delay: int,
                            local_delay: int,
                            horizons: list[int]) -> list[tuple[int, int]]:
    """Buffer demand as a function of the upstream horizon (ablation A1).

    Returns ``(horizon, buffers)`` pairs: larger horizons admit earlier
    transmission (better latency and utilisation) at the cost of more
    reserved buffers downstream — the paper's central horizon trade-off.
    """
    rows = []
    for horizon in horizons:
        window = horizon + upstream_delay + local_delay
        buffers = (max(1, math.ceil(window / spec.i_min))
                   + (spec.b_max - 1)) * spec.packets_per_message
        rows.append((horizon, buffers))
    return rows
