"""Analytical results of the real-time channel model (paper section 2, 4.3)."""

from repro.analysis.delay_bounds import (
    HopBound,
    end_to_end_bound,
    hop_bounds,
    horizon_buffer_tradeoff,
    worst_case_backlog,
)
from repro.analysis.netcalc import (
    ArrivalCurve,
    ServiceCurve,
    TokenBucket,
    backlog_bound,
    channel_backlog_bound,
    channel_delay_bound,
    delay_bound,
    residual_service,
)
from repro.analysis.rollover import (
    RolloverWindow,
    classify,
    is_safe,
    live_window,
    required_clock_bits,
)
from repro.analysis.utilization import (
    UtilisationReport,
    admissible_count,
    summarise,
    utilisation_of,
)

__all__ = [
    "ArrivalCurve",
    "HopBound",
    "RolloverWindow",
    "ServiceCurve",
    "TokenBucket",
    "UtilisationReport",
    "admissible_count",
    "backlog_bound",
    "channel_backlog_bound",
    "channel_delay_bound",
    "classify",
    "delay_bound",
    "end_to_end_bound",
    "hop_bounds",
    "horizon_buffer_tradeoff",
    "is_safe",
    "live_window",
    "required_clock_bits",
    "residual_service",
    "summarise",
    "utilisation_of",
    "worst_case_backlog",
]
