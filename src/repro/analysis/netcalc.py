"""Min-plus network calculus for real-time channels (Cruz's calculus).

Paper section 2 describes a connection's traffic as a *linear bounded
arrival process* [Cruz 91]: at most ``B_max + t / I_min`` messages in
any window of ``t`` ticks — a token-bucket **arrival curve**.  Each hop
of a real-time channel guarantees transmission by ``l + d`` — a
rate-latency **service curve**.  Those two families are closed under
the operations the analysis needs:

* the minimum of token buckets is again a (compound) arrival curve;
* the min-plus convolution of rate-latency curves (series composition
  of hops) is a rate-latency curve with the latencies summed and the
  rate the minimum;
* worst-case delay is the maximum horizontal deviation between the
  curves, worst-case backlog the maximum vertical deviation, and for
  these families both maxima occur at curve breakpoints.

The module reproduces the real-time channel model's closed-form bounds
(end-to-end delay ``sum(d_j)``, the buffer formula of section 2) and
lets experiments ask sharper questions (multi-packet messages, bursts,
residual service under reservation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.channels.spec import TrafficSpec


@dataclass(frozen=True)
class TokenBucket:
    """One affine constraint: at most ``burst + rate * t`` in t ticks."""

    burst: float
    rate: float

    def __post_init__(self) -> None:
        if self.burst < 0 or self.rate < 0:
            raise ValueError("burst and rate must be non-negative")

    def __call__(self, t: float) -> float:
        if t <= 0:
            return 0.0
        return self.burst + self.rate * t


class ArrivalCurve:
    """A concave arrival curve: the minimum of token buckets.

    ``A(t) = min_i (b_i + r_i * t)`` for t > 0, and 0 at t = 0 — the
    standard convention under which min-plus convolution of arrival
    curves equals their pointwise minimum.
    """

    def __init__(self, buckets: Iterable[TokenBucket]) -> None:
        self.buckets = tuple(buckets)
        if not self.buckets:
            raise ValueError("arrival curve needs at least one bucket")

    @classmethod
    def from_spec(cls, spec: TrafficSpec) -> "ArrivalCurve":
        """The LBAP of paper section 2, in packet slots."""
        packets = spec.packets_per_message
        return cls([TokenBucket(burst=spec.b_max * packets,
                                rate=packets / spec.i_min)])

    @classmethod
    def token_bucket(cls, burst: float, rate: float) -> "ArrivalCurve":
        return cls([TokenBucket(burst, rate)])

    def __call__(self, t: float) -> float:
        if t <= 0:
            return 0.0
        return min(bucket(t) for bucket in self.buckets)

    def __and__(self, other: "ArrivalCurve") -> "ArrivalCurve":
        """Pointwise minimum — also the min-plus convolution here."""
        return ArrivalCurve(self.buckets + other.buckets)

    def __add__(self, other: "ArrivalCurve") -> "ArrivalCurve":
        """Aggregate of independent flows (conservative compound).

        The exact sum of two minima of affine functions is piecewise
        affine but not necessarily a min of affine functions; summing
        bucket-wise over all pairs is a tight concave upper bound.
        """
        return ArrivalCurve([
            TokenBucket(a.burst + b.burst, a.rate + b.rate)
            for a in self.buckets for b in other.buckets
        ])

    @property
    def burst(self) -> float:
        return min(bucket.burst for bucket in self.buckets)

    @property
    def long_term_rate(self) -> float:
        return min(bucket.rate for bucket in self.buckets)

    def breakpoints(self) -> list[float]:
        """Times where the active bucket changes (pairwise crossings)."""
        points = {0.0}
        for a in self.buckets:
            for b in self.buckets:
                if abs(a.rate - b.rate) > 1e-12:
                    t = (b.burst - a.burst) / (a.rate - b.rate)
                    if t > 0:
                        points.add(t)
        return sorted(points)


@dataclass(frozen=True)
class ServiceCurve:
    """A rate-latency service curve ``beta(t) = rate * max(0, t - latency)``.

    ``rate=math.inf`` models a pure bounded-delay element (the per-hop
    guarantee "done by l + d" of the real-time channel model).
    """

    rate: float
    latency: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("service rate must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    def __call__(self, t: float) -> float:
        if t <= self.latency:
            return 0.0
        if math.isinf(self.rate):
            return math.inf
        return self.rate * (t - self.latency)

    def convolve(self, other: "ServiceCurve") -> "ServiceCurve":
        """Series composition: latencies add, the lower rate governs."""
        return ServiceCurve(rate=min(self.rate, other.rate),
                            latency=self.latency + other.latency)

    @classmethod
    def compose(cls, curves: Iterable["ServiceCurve"]) -> "ServiceCurve":
        result: ServiceCurve | None = None
        for curve in curves:
            result = curve if result is None else result.convolve(curve)
        if result is None:
            raise ValueError("compose needs at least one curve")
        return result

    @classmethod
    def hop(cls, local_delay: float, link_rate: float = 1.0) -> "ServiceCurve":
        """One real-time channel hop: the link transmits the packet by
        ``l + d`` at its unit packet rate."""
        return cls(rate=link_rate, latency=float(local_delay))

    @classmethod
    def pure_delay(cls, delay: float) -> "ServiceCurve":
        return cls(rate=math.inf, latency=float(delay))


def residual_service(link_rate: float, latency: float,
                     competing: ArrivalCurve) -> ServiceCurve:
    """Leftover rate-latency service after serving competing traffic.

    Classic blind-multiplexing bound: a flow sharing a rate-R server
    with cross-traffic bounded by ``b + r t`` receives at least a
    rate-latency curve with rate ``R - r`` and latency
    ``(b + R*latency) / (R - r)``.
    """
    r = competing.long_term_rate
    b = competing.burst
    if r >= link_rate:
        raise ValueError("cross-traffic saturates the link")
    rate = link_rate - r
    return ServiceCurve(rate=rate,
                        latency=(b + link_rate * latency) / rate)


def delay_bound(arrival: ArrivalCurve, service: ServiceCurve) -> float:
    """Maximum horizontal deviation h(A, beta).

    For concave A and rate-latency beta the maximum occurs at an
    arrival-curve breakpoint (including t -> 0+), where it equals
    ``latency + A(t)/rate - t``.
    """
    if arrival.long_term_rate > service.rate + 1e-12:
        return math.inf
    worst = 0.0
    for t in arrival.breakpoints():
        probe = t if t > 0 else 1e-9
        if math.isinf(service.rate):
            deviation = service.latency
        else:
            deviation = service.latency + arrival(probe) / service.rate - t
        worst = max(worst, deviation)
    return worst


def backlog_bound(arrival: ArrivalCurve, service: ServiceCurve) -> float:
    """Maximum vertical deviation v(A, beta).

    For these families the maximum occurs at the service latency or at
    an arrival breakpoint beyond it.
    """
    candidates = [service.latency] + [
        t for t in arrival.breakpoints() if t >= service.latency
    ]
    worst = 0.0
    for t in candidates:
        probe = t if t > 0 else 1e-9
        worst = max(worst, arrival(probe) - service(t))
    return worst


# ---------------------------------------------------------------------------
# Real-time channel views
# ---------------------------------------------------------------------------

def channel_delay_bound(spec: TrafficSpec,
                        local_delays: list[int]) -> float:
    """End-to-end worst-case delay by series composition.

    With pure-delay hop guarantees this reproduces the model's
    ``sum(d_j)``; with unit-rate hops it additionally charges the
    store-and-forward transmission of multi-packet bursts.
    """
    arrival = ArrivalCurve.from_spec(spec)
    service = ServiceCurve.compose(
        ServiceCurve.pure_delay(d) for d in local_delays
    )
    return delay_bound(arrival, service)


def channel_backlog_bound(spec: TrafficSpec, upstream_horizon: int,
                          upstream_delay: int, local_delay: int) -> float:
    """Buffer demand at a hop, from the calculus.

    Packets may arrive up to ``h + d_prev`` ahead of their logical
    arrival time; advancing a token bucket by ``s`` yields another
    token bucket with burst ``A(s)``.  The vertical deviation against
    the hop's pure-delay guarantee matches the paper's
    ``ceil((h + d_prev + d) / i_min)`` messages (plus the burst term).
    """
    base = ArrivalCurve.from_spec(spec)
    shift = upstream_horizon + upstream_delay
    advanced = ArrivalCurve.token_bucket(
        burst=base(shift) if shift > 0 else base.burst,
        rate=base.long_term_rate,
    )
    # Deadline-side: packets may dwell until d after logical arrival.
    service = ServiceCurve(rate=1.0, latency=float(local_delay))
    return backlog_bound(advanced, service)
