"""Clock-rollover correctness conditions (paper section 4.3).

With an n-bit clock ticking once per packet time, logical arrival
times at link ``j`` of any live packet lie in::

    [t - d_j,  t + (h_{j-1} + d_{j-1})]

so the router decodes them correctly iff both ``d_j`` and
``h_{j-1} + d_{j-1}`` stay below half the clock range.  These helpers
state and check that window, and compute the minimum clock width a set
of connection parameters requires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RolloverWindow:
    """The live window of logical arrival times around current time."""

    behind: int   # packets may have l as far as this behind t
    ahead: int    # ... and this far ahead of t

    @property
    def span(self) -> int:
        return self.behind + self.ahead + 1


def live_window(local_delay: int, upstream_delay: int,
                upstream_horizon: int) -> RolloverWindow:
    """Paper section 4.3: l_j(m) in [t - d_j, t + h_{j-1} + d_{j-1}]."""
    return RolloverWindow(behind=local_delay,
                          ahead=upstream_horizon + upstream_delay)


def is_safe(clock_bits: int, local_delay: int, upstream_delay: int,
            upstream_horizon: int) -> bool:
    """Whether the half-range condition holds for a connection."""
    half = (1 << clock_bits) // 2
    return (local_delay < half
            and upstream_horizon + upstream_delay < half)


def required_clock_bits(max_delay: int, max_horizon: int) -> int:
    """Smallest clock width decoding all delays/horizons correctly."""
    worst = max(max_delay, max_horizon + max_delay)
    return max(2, math.ceil(math.log2(worst + 1)) + 1)


def classify(clock_bits: int, now: int, logical_arrival: int) -> str:
    """Early/on-time decision as the hardware makes it (Figure 6)."""
    mask = (1 << clock_bits) - 1
    half = (1 << clock_bits) // 2
    if (now - logical_arrival) & mask < half:
        return "on-time"
    return "early"
