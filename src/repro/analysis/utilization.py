"""Link-utilisation and schedulability accounting helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.channels.admission import ConnectionLoad
from repro.channels.spec import TrafficSpec


@dataclass(frozen=True)
class UtilisationReport:
    """Summary of one link's reserved load."""

    connections: int
    utilisation: float
    peak_burst_slots: int

    @property
    def headroom(self) -> float:
        return max(0.0, 1.0 - self.utilisation)


def summarise(loads: Iterable[ConnectionLoad]) -> UtilisationReport:
    """Aggregate a link's reserved loads into a utilisation report."""
    loads = list(loads)
    return UtilisationReport(
        connections=len(loads),
        utilisation=sum(l.utilisation for l in loads),
        peak_burst_slots=sum(l.packets * l.b_max for l in loads),
    )


def utilisation_of(spec: TrafficSpec) -> float:
    """Long-run packet-slot demand of one connection."""
    return spec.utilisation


def admissible_count(spec: TrafficSpec, local_deadline: int) -> int:
    """How many identical connections one link can carry.

    Under EDF with demand bound, identical connections with per-message
    cost C, spacing I and local deadline d fit while both the
    utilisation bound ``k*C/I <= 1`` and the deadline-crunch bound
    ``k*C*b <= d`` hold (all bursts due simultaneously).
    """
    cost = spec.packets_per_message
    by_utilisation = spec.i_min // cost
    by_deadline = max(0, local_deadline // (cost * spec.b_max))
    return min(by_utilisation, by_deadline)
