"""Serialisation helpers shared by every component's ``state()``.

Checkpoint state is plain JSON — closures (engine wiring, bus request
actions) make whole-object pickling impossible, and JSON keeps the
files inspectable and the content hashes stable.  Three conversions
need care:

* **Packet metadata identity.**  One :class:`~repro.core.packet
  .PacketMeta` instance is shared by every phit of a packet, and parts
  of the fabric *mutate* it in place (hosts trim ``relay_path`` while
  relaying; delivery stamps ``delivered_cycle``).  The codec memoises
  metas by object identity on save and restores one shared instance
  per index, so aliasing survives the round trip.
* **Phits.**  Router logic only reads ``byte``/``vc``/``index``/
  ``last`` and ``getattr(phit.packet, "meta", None)`` (the
  :class:`~repro.core.packet.Phit` contract), so an in-flight phit is
  restored with a light-weight meta carrier instead of its original
  packet object.
* **RNG streams.**  ``random.Random.getstate()`` is a nested tuple;
  it round-trips through JSON as nested lists and is re-tupled on
  restore.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.packet import (
    BestEffortPacket,
    PacketMeta,
    Phit,
    TimeConstrainedPacket,
)


def node_state(node) -> Optional[list]:
    """A mesh node ``(x, y)`` (or None) as JSON."""
    return None if node is None else [node[0], node[1]]


def load_node(state) -> Optional[tuple[int, int]]:
    return None if state is None else (state[0], state[1])


def rng_state(rng: random.Random) -> list:
    """``Random.getstate()`` as JSON-able nested lists."""
    return _listify(rng.getstate())


def load_rng(rng: random.Random, state: list) -> None:
    rng.setstate(_tupleize(state))


def _listify(value):
    if isinstance(value, tuple):
        return [_listify(v) for v in value]
    return value


def _tupleize(value):
    if isinstance(value, list):
        return tuple(_tupleize(v) for v in value)
    return value


class _MetaCarrier:
    """Minimal stand-in for a phit's owning packet after a restore."""

    __slots__ = ("meta",)

    def __init__(self, meta: PacketMeta) -> None:
        self.meta = meta


class SaveContext:
    """Identity-preserving encoder for one checkpoint."""

    def __init__(self) -> None:
        self._meta_index: dict[int, int] = {}
        self._metas: list[PacketMeta] = []

    def save_meta(self, meta: Optional[PacketMeta]) -> Optional[int]:
        """Register a meta; returns its index in the shared meta table."""
        if meta is None:
            return None
        index = self._meta_index.get(id(meta))
        if index is None:
            index = len(self._metas)
            self._meta_index[id(meta)] = index
            self._metas.append(meta)
        return index

    def metas_state(self) -> list:
        """The shared meta table.  Call *after* every component saved."""
        return [
            {
                "packet_id": meta.packet_id,
                "source": node_state(meta.source),
                "destination": node_state(meta.destination),
                "injected_cycle": meta.injected_cycle,
                "delivered_cycle": meta.delivered_cycle,
                "absolute_deadline": meta.absolute_deadline,
                "connection_label": meta.connection_label,
                "sequence": meta.sequence,
                "checksum": meta.checksum,
                "relay_path": [node_state(n) for n in meta.relay_path],
                "retransmit_of": meta.retransmit_of,
            }
            for meta in self._metas
        ]

    def save_phit(self, phit: Phit) -> list:
        meta = getattr(phit.packet, "meta", None)
        return [phit.vc, phit.byte, phit.index, phit.last,
                self.save_meta(meta)]

    def save_tc_packet(self, packet: TimeConstrainedPacket) -> dict:
        return {
            "connection_id": packet.connection_id,
            "header_deadline": packet.header_deadline,
            "payload": packet.payload.hex(),
            "meta": self.save_meta(packet.meta),
        }

    def save_be_packet(self, packet: BestEffortPacket) -> dict:
        return {
            "x_offset": packet.x_offset,
            "y_offset": packet.y_offset,
            "payload": packet.payload.hex(),
            "meta": self.save_meta(packet.meta),
        }


class LoadContext:
    """Identity-preserving decoder for one checkpoint."""

    def __init__(self, metas_state: list) -> None:
        self._metas = [self._load_meta(state) for state in metas_state]

    @staticmethod
    def _load_meta(state: dict) -> PacketMeta:
        return PacketMeta(
            packet_id=state["packet_id"],
            source=load_node(state["source"]),
            destination=load_node(state["destination"]),
            injected_cycle=state["injected_cycle"],
            delivered_cycle=state["delivered_cycle"],
            absolute_deadline=state["absolute_deadline"],
            connection_label=state["connection_label"],
            sequence=state["sequence"],
            checksum=state["checksum"],
            relay_path=tuple(load_node(n) for n in state["relay_path"]),
            retransmit_of=state["retransmit_of"],
        )

    def meta(self, index: Optional[int]) -> Optional[PacketMeta]:
        return None if index is None else self._metas[index]

    def load_phit(self, state: list) -> Phit:
        vc, byte, index, last, meta_index = state
        meta = self.meta(meta_index)
        return Phit(
            vc=vc, byte=byte,
            packet=None if meta is None else _MetaCarrier(meta),
            index=index, last=bool(last),
        )

    def load_tc_packet(self, state: dict) -> TimeConstrainedPacket:
        return TimeConstrainedPacket(
            connection_id=state["connection_id"],
            header_deadline=state["header_deadline"],
            payload=bytes.fromhex(state["payload"]),
            meta=self.meta(state["meta"]),
        )

    def load_be_packet(self, state: dict) -> BestEffortPacket:
        return BestEffortPacket(
            x_offset=state["x_offset"],
            y_offset=state["y_offset"],
            payload=bytes.fromhex(state["payload"]),
            meta=self.meta(state["meta"]),
        )
