"""Crash-consistent checkpoint/restore for long simulations.

The subsystem has three layers (see ``docs/checkpointing.md``):

* :mod:`repro.checkpoint.codec` — the ``state()`` / ``load_state()``
  serialisation helpers shared by every stateful component (packet
  metadata identity, phits, RNG streams).
* :mod:`repro.checkpoint.store` — atomic content-hashed checkpoint
  files (write-temp + fsync + rename): a reader sees a complete
  checkpoint or none, even under SIGKILL.
* :mod:`repro.checkpoint.sessions` — checkpointable driving loops for
  the chaos soak and the random admitted workload, with the
  byte-identical-resume guarantee.

:mod:`repro.checkpoint.runtime` carries the process-local settings the
campaign runner uses to checkpoint worker runs without perturbing
result-cache hashes.
"""

from __future__ import annotations

from repro.checkpoint.codec import LoadContext, SaveContext
from repro.checkpoint.runtime import (
    CheckpointContext,
    checkpoint_context,
    clear_checkpoint_context,
    set_checkpoint_context,
)
from repro.checkpoint.sessions import (
    DEFAULT_CHECKPOINT_INTERVAL,
    ChaosSession,
    RandomWorkloadSession,
    open_chaos_session,
    open_random_session,
)
from repro.checkpoint.store import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    CheckpointStore,
    canonical_dumps,
    clear_checkpoints,
    fingerprint_of,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "ChaosSession",
    "CheckpointContext",
    "CheckpointError",
    "CheckpointStore",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "LoadContext",
    "RandomWorkloadSession",
    "SaveContext",
    "canonical_dumps",
    "checkpoint_context",
    "clear_checkpoint_context",
    "clear_checkpoints",
    "fingerprint_of",
    "open_chaos_session",
    "open_random_session",
    "set_checkpoint_context",
]
