"""Atomic on-disk checkpoint files.

A checkpoint is one JSON document written with the same crash-safety
discipline as the campaign result cache: serialise to a temporary file
in the target directory, ``fsync``, then ``os.replace`` into place.  A
reader therefore sees either a complete checkpoint or none at all —
never a torn write — even if the writing process is SIGKILLed
mid-checkpoint.

File names embed the cycle and a content hash
(``ckpt-<cycle>-<hash12>.json``), so a re-written checkpoint of
identical state lands on the same name and a corrupted rename can be
detected by re-hashing.

Every load failure — missing file, unreadable JSON, wrong format
version, or a config fingerprint that does not match the run being
resumed — raises :class:`CheckpointError`, a ``ValueError`` subclass so
the CLI's existing bad-input handling (print ``error:`` and exit 2)
applies unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

#: On-disk format version; bump on incompatible layout changes.
CHECKPOINT_FORMAT = 1


class CheckpointError(ValueError):
    """A checkpoint could not be loaded or does not match this run."""


def canonical_dumps(value) -> str:
    """Canonical JSON: sorted keys, no whitespace (stable hashes)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def fingerprint_of(config: dict) -> str:
    """SHA-256 over the canonical JSON of a run's configuration.

    A resume is only valid against the exact run that wrote the
    checkpoint; the fingerprint pins every input that shapes behaviour
    (topology, seeds, workload knobs).
    """
    return hashlib.sha256(canonical_dumps(config).encode()).hexdigest()


class CheckpointStore:
    """Reads and writes checkpoints for one run in one directory."""

    def __init__(self, directory, kind: str, fingerprint: str) -> None:
        self.directory = Path(directory)
        self.kind = kind
        self.fingerprint = fingerprint

    # -- writing ----------------------------------------------------------

    def save(self, cycle: int, state: dict) -> Path:
        """Atomically write one checkpoint; returns its path."""
        document = canonical_dumps({
            "format": CHECKPOINT_FORMAT,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "cycle": cycle,
            "state": state,
        })
        digest = hashlib.sha256(document.encode()).hexdigest()[:12]
        path = self.directory / f"ckpt-{cycle}-{digest}.json"
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".ckpt-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(document)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # -- reading ----------------------------------------------------------

    def load(self, path) -> dict:
        """Load and validate one checkpoint file.

        Returns the full document (``cycle`` and ``state`` keys).
        Raises :class:`CheckpointError` on any problem.
        """
        path = Path(path)
        if not path.is_file():
            raise CheckpointError(f"checkpoint not found: {path}")
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"corrupt checkpoint {path}: {exc}"
            ) from exc
        if not isinstance(document, dict) or "state" not in document:
            raise CheckpointError(f"corrupt checkpoint {path}: not a "
                                  "checkpoint document")
        if document.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint {path} has format "
                f"{document.get('format')!r}, expected {CHECKPOINT_FORMAT}"
            )
        if document.get("kind") != self.kind:
            raise CheckpointError(
                f"checkpoint {path} is a {document.get('kind')!r} "
                f"checkpoint, expected {self.kind!r}"
            )
        if document.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {path} was written by a different run "
                "configuration (fingerprint mismatch) — refusing to resume"
            )
        return document

    def latest(self) -> Optional[Path]:
        """The newest complete checkpoint in the directory, if any."""
        if not self.directory.is_dir():
            return None
        best: Optional[tuple[int, Path]] = None
        for path in self.directory.glob("ckpt-*.json"):
            try:
                cycle = int(path.name.split("-")[1])
            except (IndexError, ValueError):
                continue
            if best is None or cycle > best[0]:
                best = (cycle, path)
        return None if best is None else best[1]

    def clear(self) -> None:
        """Delete this run's checkpoints (after a successful finish)."""
        clear_checkpoints(self.directory)


def clear_checkpoints(directory) -> None:
    """Best-effort deletion of every checkpoint file in a directory."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in directory.glob("ckpt-*.json"):
        try:
            path.unlink()
        except OSError:
            pass
