"""Checkpointable simulation sessions.

A *session* owns everything a driving loop in :mod:`repro.faults.harness`
or :mod:`repro.campaign.workloads` used to keep in local variables — the
network, the workload RNG, the send/check schedules — so the whole run
can be captured in one :meth:`state` call and resumed byte-identically.

The segmentation rule
---------------------

The engine guarantees that ``run(a); run(b)`` is cycle-for-cycle
identical to ``run(a + b)`` (fast-forward jumps clamp at the run
target; see ``docs/performance.md``).  Sessions exploit exactly that:
the driving loop's *natural* spans (one packet slot for the chaos soak,
two ticks for the random workload) are split at checkpoint cycles, the
state is saved between the two ``run`` calls, and nothing else changes.
Workload conditions — sends, invariant checks — are only ever evaluated
at natural span boundaries, so a session restored mid-span first
finishes the span it was in (``span_end``) before re-entering the loop.

What a checkpoint captures: router microarchitecture, engine clock and
fast-forward counters, hosts and traffic sources, the channel software
(manager, admission, regulators), fault injection/detection/recovery
timers, the delivery log, metrics and the trace ring, and the workload
loop variables.  What it does not: metrics *snapshot emitters* and
custom :class:`~repro.network.service.ServiceTrace` hooks (re-enable
after restore), and the final ``drain()`` of the random workload, which
runs to quiescence and is cheap to redo.
"""

from __future__ import annotations

import random
from dataclasses import asdict
from typing import Optional

from repro.checkpoint.codec import (
    LoadContext,
    SaveContext,
    load_rng,
    rng_state,
)
from repro.checkpoint.store import CheckpointError, fingerprint_of
from repro.core.invariants import InvariantViolation, check_router_invariants

#: Default cycles between checkpoints (chosen so checkpointing costs
#: well under 5% on the benchmark workloads; see
#: ``benchmarks/bench_checkpoint.py``).
DEFAULT_CHECKPOINT_INTERVAL = 100_000


def default_chaos_plan(config):
    """The fault plan a chaos soak derives from its config alone."""
    from repro.faults.plan import FaultPlan

    return FaultPlan.random(
        config.seed, config.width, config.height,
        cuts=config.cuts, flaps=config.flaps,
        corruptions=config.corruptions, drops=config.drops,
        babblers=config.babblers,
        window=(config.cycles // 8, max(config.cycles // 8 + 1,
                                        config.cycles * 3 // 4)),
    )


class _SessionBase:
    """Shared span-driving, checkpoint-firing and invariant plumbing."""

    network = None  # set by subclasses
    span_end = 0
    check_every = 0
    _store = None
    _interval = 0

    def attach_store(self, store, interval: int) -> None:
        """Write a checkpoint every ``interval`` cycles to ``store``."""
        if store is not None and interval < 1:
            raise ValueError("checkpoint interval must be positive")
        self._store = store
        self._interval = interval if store is not None else 0

    def _run_span(self, target: int) -> None:
        """Advance the engine to ``target``, checkpointing on the way.

        ``span_end`` is committed before the first ``run`` call so a
        checkpoint taken inside the span records where the span ends;
        a restored session replays the remainder and only then
        re-evaluates workload conditions.
        """
        net = self.network
        self.span_end = target
        store, interval = self._store, self._interval
        if store is None:
            if net.cycle < target:
                net.run(target - net.cycle)
            return
        while net.cycle < target:
            next_ckpt = (net.cycle // interval + 1) * interval
            net.run(min(target, next_ckpt) - net.cycle)
            if net.cycle % interval == 0:
                runtime = getattr(net, "_shard", None)
                if runtime is not None:
                    # Coordinated checkpoint: converge the partitioned
                    # state (collective — every worker reaches this at
                    # the same cycle), then let worker 0 write the
                    # ordinary full-state document while the others
                    # write their per-shard slices.
                    runtime.sync_owned_state()
                    if not getattr(store, "full_state", True):
                        store.save(net.cycle, runtime.part_state())
                        continue
                store.save(net.cycle, self.state())

    def _check_invariants(self) -> None:
        net = self.network
        runtime = getattr(net, "_shard", None)
        if runtime is None:
            for node, router in net.routers.items():
                try:
                    check_router_invariants(router)
                except InvariantViolation as exc:
                    self.invariant_failures.append(
                        f"cycle {net.cycle} {node}: {exc}")
            return
        # Sharded: each worker checks its owned routers (replicas are
        # frozen at their last synced state and would trip nothing
        # real); the merged, mesh-ordered result is identical on every
        # worker — and to the single-process scan.
        local = []
        for node, router in net.routers.items():
            if not runtime.owns(node):
                continue
            try:
                check_router_invariants(router)
            except InvariantViolation as exc:
                local.append((node, f"cycle {net.cycle} {node}: {exc}"))
        self.invariant_failures.extend(
            runtime.merge_invariant_failures(local))

    def _finalize_shard(self) -> None:
        """Converge partitioned state before reading final results."""
        runtime = getattr(self.network, "_shard", None)
        if runtime is not None:
            runtime.final_sync()

    def state(self) -> dict:  # pragma: no cover - interface
        raise NotImplementedError


class ChaosSession(_SessionBase):
    """The seeded chaos soak, restructured around checkpoints.

    Construction reproduces :func:`repro.faults.harness.run_chaos_soak`
    setup verbatim (same RNG draw order, same engine component
    registration order); :meth:`run` reproduces its driving loop with
    the spans split per the module rule.  ``run_chaos_soak`` itself
    delegates here, so there is exactly one chaos code path.
    """

    KIND = "chaos"

    def __init__(self, config, plan=None, *,
                 check_every: Optional[int] = None,
                 shard_world=None,
                 _restore: bool = False) -> None:
        from repro.faults import install_fault_tolerance
        from repro.faults.harness import _establish_workload
        from repro.faults.injector import FaultInjector
        from repro.network.network import MeshNetwork

        self.config = config
        self.check_every = (config.invariant_check_every
                            if check_every is None else check_every)
        self.rng = random.Random(config.seed)
        self.network = MeshNetwork(config.width, config.height,
                                   on_memory_full="drop",
                                   engine=getattr(config, "engine",
                                                  "exact"))
        if shard_world is not None:
            from repro.shard import install_shard_runtime

            install_shard_runtime(self.network, shard_world)
        self.admission_rejects: dict[str, int] = {}
        if _restore:
            self.channels: list = []
        else:
            self.channels = _establish_workload(self.network, config,
                                                self.rng,
                                                self.admission_rejects)
        self.tolerance = install_fault_tolerance(self.network)
        if plan is None:
            plan = default_chaos_plan(config)
        self.plan = plan
        self.injector = FaultInjector(self.network, plan)
        self.network.engine.add_component(self.injector)
        self.nodes = list(self.network.mesh.nodes())
        if _restore:
            self.be_payloads: list[bytes] = []
        else:
            self.be_payloads = [
                bytes(self.rng.randrange(256) for __ in range(
                    self.rng.randrange(6, 24))) for __ in range(8)
            ]
        self.slot = self.network.params.slot_cycles
        self.period_cycles = config.message_period_ticks * self.slot
        self.invariant_failures: list[str] = []
        self.phase = "main"
        self.span_end = 0
        self.next_message = 0
        self.next_be = config.be_period_cycles
        self.next_check = self.check_every

    @classmethod
    def fingerprint_for(cls, config, plan=None) -> str:
        """Pin of every input that shapes a chaos run's behaviour."""
        if plan is None:
            plan = default_chaos_plan(config)
        config_dict = asdict(config)
        # Both engine modes produce byte-identical runs, so the mode is
        # not behaviour-shaping: dropping it keeps fingerprints of
        # pre-existing checkpoints valid and lets a run checkpointed in
        # one mode resume in the other.  The shard count is excluded
        # for the same reason: sharded runs are byte-identical to
        # single-process ones, and worker 0's checkpoints are ordinary
        # full-state documents resumable at any shard count.
        config_dict.pop("engine", None)
        config_dict.pop("shards", None)
        return fingerprint_of({
            "workload": cls.KIND,
            "config": config_dict,
            "plan": plan.signature(),
        })

    def fingerprint(self) -> str:
        return self.fingerprint_for(self.config, self.plan)

    # -- driving ----------------------------------------------------------

    def run(self, *, store=None,
            interval: int = DEFAULT_CHECKPOINT_INTERVAL):
        """Run (or finish running) the soak; returns the ChaosReport."""
        self.attach_store(store, interval)
        net, config = self.network, self.config
        if net.cycle < self.span_end:
            self._run_span(self.span_end)
        if self.phase == "main":
            while net.cycle < config.cycles:
                if net.cycle >= self.next_message:
                    for channel in self.channels:
                        net.send_message(
                            channel,
                            payload=bytes([len(self.channels)]) * 4)
                    self.next_message += self.period_cycles
                if net.cycle >= self.next_be:
                    src, dst = self.rng.sample(self.nodes, 2)
                    net.send_best_effort(
                        src, dst, payload=self.rng.choice(self.be_payloads))
                    self.next_be += config.be_period_cycles
                if self.check_every > 0 and net.cycle >= self.next_check:
                    self._check_invariants()
                    self.next_check += self.check_every
                self._run_span(min(net.cycle + self.slot, config.cycles))
            self.phase = "settle"
        if self.phase == "settle":
            # Settle: no new messages; let retransmissions and drains
            # finish.
            self._run_span(config.cycles + config.settle_cycles)
            self._check_invariants()
            self.injector.detach()
            self.tolerance.detach()
            self.phase = "done"
        self._finalize_shard()
        return self.report()

    def report(self):
        from repro.faults.harness import ChaosReport
        from repro.faults.injector import BABBLE_LABEL

        net = self.network
        degraded = sorted(net.manager.degraded_channels)
        misses_total = net.log.deadline_misses
        misses_undegraded = sum(
            1 for record in net.log.records
            if record.deadline_met is False
            and record.connection_label not in degraded
            and record.connection_label != BABBLE_LABEL
        )
        return ChaosReport(
            seed=self.config.seed,
            cycles=net.cycle,
            counters=net.fault_counters().as_dict(),
            tc_delivered=net.log.tc_delivered,
            be_delivered=net.log.be_delivered,
            deadline_misses_total=misses_total,
            deadline_misses_undegraded=misses_undegraded,
            degraded_labels=degraded,
            rerouted_count=net.fault_stats.channels_rerouted,
            invariant_failures=list(self.invariant_failures),
            channels_established=len(self.channels),
            faults_fired=len(self.injector.fired),
            latency={cls: histogram.state() for cls, histogram
                     in net.log.latency_histograms.items()},
            admission_rejects=dict(sorted(
                self.admission_rejects.items())),
        )

    # -- checkpointing -----------------------------------------------------

    def state(self) -> dict:
        ctx = SaveContext()
        state = {
            "phase": self.phase,
            "span_end": self.span_end,
            "next_message": self.next_message,
            "next_be": self.next_be,
            "next_check": self.next_check,
            "invariant_failures": list(self.invariant_failures),
            "admission_rejects": dict(sorted(
                self.admission_rejects.items())),
            "channel_labels": [channel.label
                               for channel in self.channels],
            "be_payloads": [payload.hex()
                            for payload in self.be_payloads],
            "rng": rng_state(self.rng),
            "network": self.network.state(ctx),
            "injector": self.injector.state(),
            "watchdog": self.tolerance.watchdog.state(),
            "controller": self.tolerance.controller.state(),
        }
        # Saved last: the meta table only becomes complete once every
        # component has registered its in-flight packets.
        state["metas"] = ctx.metas_state()
        return state

    @classmethod
    def restore(cls, config, state: dict, plan=None, *,
                check_every: Optional[int] = None,
                shard_world=None) -> "ChaosSession":
        session = cls(config, plan=plan, check_every=check_every,
                      shard_world=shard_world, _restore=True)
        ctx = LoadContext(state["metas"])
        session.network.load_state(state["network"], ctx)
        if session.network._shard is not None:
            session.network._shard.resync()
        session.injector.load_state(state["injector"])
        session.tolerance.watchdog.load_state(state["watchdog"])
        session.tolerance.controller.load_state(state["controller"])
        session.channels = []
        for label in state["channel_labels"]:
            channel = session.network.manager.find(label)
            if channel is None:
                raise CheckpointError(
                    f"checkpoint references channel {label!r} that the "
                    "restored manager does not know")
            session.channels.append(channel)
        session.be_payloads = [bytes.fromhex(payload)
                               for payload in state["be_payloads"]]
        load_rng(session.rng, state["rng"])
        session.phase = state["phase"]
        session.span_end = state["span_end"]
        session.next_message = state["next_message"]
        session.next_be = state["next_be"]
        session.next_check = state["next_check"]
        session.invariant_failures = list(state["invariant_failures"])
        session.admission_rejects = {
            str(reason): int(count) for reason, count
            in state.get("admission_rejects", {}).items()
        }
        if session.check_every > 0:
            session._check_invariants()  # once after every restore
        return session


class RandomWorkloadSession(_SessionBase):
    """The CLI/campaign random admitted workload, checkpointable.

    Reproduces :func:`repro.campaign.workloads.build_random_workload`
    followed by ``drive_random_workload`` — same derived RNG substreams,
    same send schedule — with the two-tick spans split at checkpoint
    cycles.  The final ``drain()`` is *not* checkpoint-segmented: it
    runs to quiescence, so re-running it after a crash redoes bounded
    work and cannot diverge.
    """

    KIND = "random"

    def __init__(self, width: int, height: int, channels: int,
                 ticks: int, seed: int, *, check_every: int = 0,
                 engine: str = "exact", shard_world=None,
                 _restore: bool = False) -> None:
        from repro.campaign.spec import derive_seed
        from repro.campaign.workloads import build_random_workload

        self.width = width
        self.height = height
        self.channel_count = channels
        self.ticks = ticks
        self.seed = seed
        self.engine = engine
        self.check_every = check_every
        self.admission_rejects: dict[str, int] = {}
        if _restore:
            from repro.network.network import build_mesh_network

            self.network = build_mesh_network(width, height,
                                              engine=engine)
            if shard_world is not None:
                from repro.shard import install_shard_runtime

                install_shard_runtime(self.network, shard_world)
            self.admitted: list = []
        else:
            self.network, self.admitted = build_random_workload(
                width, height, channels, seed, self.admission_rejects,
                engine=engine, shard_world=shard_world)
        self.rng = random.Random(derive_seed(seed, "traffic"))
        self.nodes = list(self.network.mesh.nodes())
        self.slot = self.network.params.slot_cycles
        self.invariant_failures: list[str] = []
        self.phase = "main"
        self.span_end = 0
        self.next_tick = 0
        self.next_check = check_every

    @classmethod
    def fingerprint_for(cls, width: int, height: int, channels: int,
                        ticks: int, seed: int) -> str:
        return fingerprint_of({
            "workload": cls.KIND,
            "width": width, "height": height,
            "channels": channels, "ticks": ticks,
            "seed": seed,
        })

    def fingerprint(self) -> str:
        return self.fingerprint_for(self.width, self.height,
                                    self.channel_count, self.ticks,
                                    self.seed)

    # -- driving ----------------------------------------------------------

    def run(self, *, store=None,
            interval: int = DEFAULT_CHECKPOINT_INTERVAL):
        """Run (or finish running) the workload; returns the network."""
        self.attach_store(store, interval)
        net = self.network
        if net.cycle < self.span_end:
            self._run_span(self.span_end)
        if self.phase == "main":
            while self.next_tick < self.ticks:
                tick = self.next_tick
                for channel, i_min in self.admitted:
                    if tick % i_min == 0:
                        net.send_message(channel)
                if self.rng.random() < 0.25:
                    src, dst = self.rng.sample(self.nodes, 2)
                    net.send_best_effort(
                        src, dst,
                        payload=bytes(self.rng.randrange(8, 100)))
                if self.check_every > 0 and net.cycle >= self.next_check:
                    self._check_invariants()
                    self.next_check += self.check_every
                self.next_tick = tick + 2
                self._run_span(net.cycle + 2 * self.slot)
            self.phase = "drain"
        if self.phase == "drain":
            net.drain(max_cycles=2_000_000)
            if self.check_every > 0:
                self._check_invariants()
            self.phase = "done"
        self._finalize_shard()
        return net

    # -- checkpointing -----------------------------------------------------

    def state(self) -> dict:
        ctx = SaveContext()
        state = {
            "phase": self.phase,
            "span_end": self.span_end,
            "next_tick": self.next_tick,
            "next_check": self.next_check,
            "invariant_failures": list(self.invariant_failures),
            "admission_rejects": dict(sorted(
                self.admission_rejects.items())),
            "admitted": [[channel.label, i_min]
                         for channel, i_min in self.admitted],
            "rng": rng_state(self.rng),
            "network": self.network.state(ctx),
        }
        state["metas"] = ctx.metas_state()
        return state

    @classmethod
    def restore(cls, width: int, height: int, channels: int,
                ticks: int, seed: int, state: dict, *,
                check_every: int = 0, engine: str = "exact",
                shard_world=None) -> "RandomWorkloadSession":
        session = cls(width, height, channels, ticks, seed,
                      check_every=check_every, engine=engine,
                      shard_world=shard_world, _restore=True)
        ctx = LoadContext(state["metas"])
        session.network.load_state(state["network"], ctx)
        if session.network._shard is not None:
            session.network._shard.resync()
        session.admitted = []
        for label, i_min in state["admitted"]:
            channel = session.network.manager.find(label)
            if channel is None:
                raise CheckpointError(
                    f"checkpoint references channel {label!r} that the "
                    "restored manager does not know")
            session.admitted.append((channel, i_min))
        load_rng(session.rng, state["rng"])
        session.phase = state["phase"]
        session.span_end = state["span_end"]
        session.next_tick = state["next_tick"]
        session.next_check = state["next_check"]
        session.invariant_failures = list(state["invariant_failures"])
        session.admission_rejects = {
            str(reason): int(count) for reason, count
            in state.get("admission_rejects", {}).items()
        }
        if session.check_every > 0:
            session._check_invariants()  # once after every restore
        return session


def open_chaos_session(config, store, *, plan=None,
                       check_every: Optional[int] = None) -> ChaosSession:
    """Resume from the store's latest checkpoint, or start fresh."""
    latest = store.latest()
    if latest is None:
        return ChaosSession(config, plan=plan, check_every=check_every)
    document = store.load(latest)
    return ChaosSession.restore(config, document["state"], plan=plan,
                                check_every=check_every)


def open_random_session(width: int, height: int, channels: int,
                        ticks: int, seed: int, store, *,
                        check_every: int = 0,
                        engine: str = "exact") -> RandomWorkloadSession:
    """Resume from the store's latest checkpoint, or start fresh."""
    latest = store.latest()
    if latest is None:
        return RandomWorkloadSession(width, height, channels, ticks,
                                     seed, check_every=check_every,
                                     engine=engine)
    document = store.load(latest)
    return RandomWorkloadSession.restore(
        width, height, channels, ticks, seed, document["state"],
        check_every=check_every, engine=engine)
