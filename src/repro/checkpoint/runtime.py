"""Process-local checkpoint context for campaign workers.

The campaign runner executes each run in a fresh worker process via
:func:`repro.campaign.worker.subprocess_entry`.  Threading checkpoint
settings through ``RunConfig`` would change every config's content hash
(invalidating caches for a setting that does not affect results), so
the worker instead publishes the settings process-locally before the
workload executes, and the workload executors consult them here.

``REPRO_CHECKPOINT_INTERVAL`` overrides the default interval for
campaign runs (cycles between checkpoints).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.checkpoint.sessions import DEFAULT_CHECKPOINT_INTERVAL

#: Environment variable overriding the campaign checkpoint interval.
INTERVAL_ENV = "REPRO_CHECKPOINT_INTERVAL"

_context: Optional["CheckpointContext"] = None


@dataclass(frozen=True)
class CheckpointContext:
    """Where and how often the current process should checkpoint."""

    directory: str
    interval: int = DEFAULT_CHECKPOINT_INTERVAL


def interval_from_env(default: int = DEFAULT_CHECKPOINT_INTERVAL) -> int:
    """The campaign checkpoint interval, honouring the env override."""
    raw = os.environ.get(INTERVAL_ENV)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{INTERVAL_ENV} must be an integer, got {raw!r}") from None
    if value < 1:
        raise ValueError(f"{INTERVAL_ENV} must be positive, got {value}")
    return value


def set_checkpoint_context(directory: str,
                           interval: Optional[int] = None) -> None:
    """Enable checkpointing for workloads run in this process."""
    global _context
    _context = CheckpointContext(
        directory=str(directory),
        interval=interval_from_env() if interval is None else interval,
    )


def clear_checkpoint_context() -> None:
    """Disable checkpointing for workloads run in this process."""
    global _context
    _context = None


def checkpoint_context() -> Optional[CheckpointContext]:
    """The active context, or ``None`` when checkpointing is off."""
    return _context
