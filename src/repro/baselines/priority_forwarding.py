"""Behavioural model of the priority-forwarding router (Toda et al.).

The paper's section 6 contrasts its design with the priority-forwarding
router chip: a packet-switched router with a 32-bit *static* priority
field, small (8-packet) priority queues at each input port, and a
priority-inheritance protocol — when a full input buffer blocks
transmission of high-priority packets at the upstream node, the head
packet inherits the priority of the highest-priority packet still
waiting behind it.

This model reproduces the scheduling semantics at slot granularity:

* service order is by static priority (higher value first), FIFO
  within a priority level;
* the queue is bounded; when it is full, arriving packets wait in an
  upstream overflow list, and the queue's head packet *inherits* the
  maximum priority among the blocked packets, bounding priority
  inversion exactly as the original protocol intends;
* no logical-arrival gating: the discipline is work-conserving and has
  no notion of per-hop deadlines — which is why a diverse deadline mix
  (the real-time channel workload) eventually misses deadlines that the
  deadline-driven router meets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.link_scheduler import ScheduledPacket

#: Queue depth of the original chip's input priority queues.
DEFAULT_QUEUE_DEPTH = 8


@dataclass
class _Entry:
    priority: int
    seq: int
    packet: ScheduledPacket
    inherited: int = 0

    @property
    def effective(self) -> int:
        return max(self.priority, self.inherited)


class PriorityForwardingScheduler:
    """Static-priority link discipline with priority inheritance."""

    def __init__(self, priority_of: Callable[[ScheduledPacket], int],
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 inheritance: bool = True) -> None:
        if queue_depth < 1:
            raise ValueError("queue depth must be positive")
        self.priority_of = priority_of
        self.queue_depth = queue_depth
        #: The original chip's priority-inheritance protocol can be
        #: disabled to measure the priority inversion it prevents.
        self.inheritance = inheritance
        self._queue: list[_Entry] = []
        self._overflow: list[_Entry] = []
        self._seq = itertools.count()
        self._be: list[Any] = []
        self.tc_served = 0
        self.be_served = 0
        self.inheritance_events = 0

    # -- enqueue ----------------------------------------------------------

    def add_tc(self, packet: ScheduledPacket, now: int) -> None:
        entry = _Entry(priority=self.priority_of(packet),
                       seq=next(self._seq), packet=packet)
        if len(self._queue) < self.queue_depth:
            self._queue.append(entry)
        else:
            self._overflow.append(entry)
            self._apply_inheritance()

    def add_be(self, item: Any) -> None:
        self._be.append(item)

    def _apply_inheritance(self) -> None:
        """The oldest queued packet inherits the max blocked priority."""
        if not self.inheritance:
            return
        if not self._queue or not self._overflow:
            return
        blocked_max = max(e.effective for e in self._overflow)
        head = min(self._queue, key=lambda e: e.seq)
        if blocked_max > head.effective:
            head.inherited = blocked_max
            self.inheritance_events += 1

    # -- service ------------------------------------------------------------

    def has_on_time(self, now: int) -> bool:
        return bool(self._queue)

    def has_work(self, now: int) -> bool:
        return bool(self._queue or self._overflow or self._be)

    def pick(self, now: int) -> Optional[tuple[str, Any]]:
        if self._queue:
            best = max(self._queue, key=lambda e: (e.effective, -e.seq))
            self._queue.remove(best)
            if self._overflow:
                self._queue.append(self._overflow.pop(0))
                self._apply_inheritance()
            self.tc_served += 1
            return ("TC", best.packet)
        if self._be:
            self.be_served += 1
            return ("BE", self._be.pop(0))
        return None

    @property
    def tc_backlog(self) -> int:
        return len(self._queue) + len(self._overflow)

    @property
    def be_backlog(self) -> int:
        return len(self._be)
