"""Virtual-channel priority scheduling (the wormhole-priority baseline).

Section 6's middle ground: a wormhole router that partitions traffic
onto a handful of virtual channels with priority arbitration between
them.  Priority resolution is *tied to the number of virtual channels*
— a few coarse classes, FIFO within each — so two connections with
different deadlines but the same class are indistinguishable.  The
model exposes exactly that limitation: it maps each packet to one of
``levels`` classes via a caller-supplied function and serves the
highest non-empty class.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.core.link_scheduler import ScheduledPacket


class VcPriorityScheduler:
    """Fixed-priority classes with FIFO service inside each class."""

    def __init__(self, levels: int,
                 class_of: Callable[[ScheduledPacket], int]) -> None:
        if levels < 1:
            raise ValueError("need at least one virtual-channel class")
        self.levels = levels
        self.class_of = class_of
        self._classes: list[deque[ScheduledPacket]] = [
            deque() for _ in range(levels)
        ]
        self._be: deque[Any] = deque()
        self.tc_served = 0
        self.be_served = 0

    def add_tc(self, packet: ScheduledPacket, now: int) -> None:
        level = self.class_of(packet)
        if not 0 <= level < self.levels:
            raise ValueError(f"class {level} outside 0..{self.levels - 1}")
        self._classes[level].append(packet)

    def add_be(self, item: Any) -> None:
        self._be.append(item)

    def has_on_time(self, now: int) -> bool:
        return any(self._classes)

    def has_work(self, now: int) -> bool:
        return any(self._classes) or bool(self._be)

    def pick(self, now: int) -> Optional[tuple[str, Any]]:
        for queue in self._classes:  # class 0 is the highest priority
            if queue:
                self.tc_served += 1
                return ("TC", queue.popleft())
        if self._be:
            self.be_served += 1
            return ("BE", self._be.popleft())
        return None

    @property
    def tc_backlog(self) -> int:
        return sum(len(q) for q in self._classes)

    @property
    def be_backlog(self) -> int:
        return len(self._be)
