"""FIFO link scheduling — the conventional packet-switched baseline.

A router without deadline awareness serves buffered packets in arrival
order.  It is work-conserving (no logical-arrival gating), so it gives
*better average latency* than the real-time discipline at light load —
but it cannot differentiate urgencies, so deadline misses appear as
soon as queues build (paper section 1's critique of existing parallel
machines).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.core.link_scheduler import ScheduledPacket


class FifoLinkScheduler:
    """Drop-in baseline for the slot simulator's link discipline."""

    def __init__(self) -> None:
        self._tc: deque[ScheduledPacket] = deque()
        self._be: deque[Any] = deque()
        self.tc_served = 0
        self.be_served = 0

    def add_tc(self, packet: ScheduledPacket, now: int) -> None:
        self._tc.append(packet)

    def add_be(self, item: Any) -> None:
        self._be.append(item)

    def has_on_time(self, now: int) -> bool:
        # Work-conserving: any queued packet is served immediately, so
        # it always outranks a standing best-effort backlog.
        return bool(self._tc)

    def has_work(self, now: int) -> bool:
        return bool(self._tc or self._be)

    def pick(self, now: int) -> Optional[tuple[str, Any]]:
        if self._tc:
            self.tc_served += 1
            return ("TC", self._tc.popleft())
        if self._be:
            self.be_served += 1
            return ("BE", self._be.popleft())
        return None

    @property
    def tc_backlog(self) -> int:
        return len(self._tc)

    @property
    def be_backlog(self) -> int:
        return len(self._be)
