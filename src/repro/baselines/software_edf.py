"""Cost model of *software* deadline scheduling (paper section 1).

The paper motivates on-chip scheduling hardware by arguing that doing
the deadline sort in protocol software "would impose a significant
burden on the processing resources at each node and would prove too
slow to serve multiple high-speed links".  This module quantifies that
claim: given a processor's instruction rate and a heap-based sorter, it
computes the maximum link rate software scheduling can sustain and the
CPU share it steals from application tasks — the numbers behind the
hardware/software trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SoftwareSchedulerModel:
    """A node's CPU doing per-packet EDF scheduling in software.

    ``instructions_per_op`` is the cost of one heap operation step
    (compare + swap + bookkeeping); a packet needs one insert and one
    extract, each ``log2(backlog)`` steps deep, plus fixed per-packet
    overhead (interrupt, header parse, enqueue on the device).
    """

    cpu_hz: float = 50e6
    instructions_per_op: int = 12
    fixed_instructions_per_packet: int = 120

    def instructions_per_packet(self, backlog: int) -> int:
        depth = max(1, math.ceil(math.log2(max(2, backlog))))
        return self.fixed_instructions_per_packet + (
            2 * depth * self.instructions_per_op
        )

    def packet_time_s(self, backlog: int) -> float:
        return self.instructions_per_packet(backlog) / self.cpu_hz

    def max_packets_per_second(self, backlog: int) -> float:
        return self.cpu_hz / self.instructions_per_packet(backlog)

    def max_links_served(self, link_packets_per_second: float,
                         backlog: int,
                         cpu_share: float = 1.0) -> int:
        """Links one CPU can schedule at the given per-link rate."""
        if not 0 < cpu_share <= 1:
            raise ValueError("cpu_share must be in (0, 1]")
        budget = self.max_packets_per_second(backlog) * cpu_share
        return int(budget // link_packets_per_second)

    def cpu_share_for(self, links: int, link_packets_per_second: float,
                      backlog: int) -> float:
        """CPU fraction consumed scheduling ``links`` full links."""
        need = links * link_packets_per_second
        return need / self.max_packets_per_second(backlog)


def hardware_packet_rate(link_hz: float = 50e6,
                         packet_bytes: int = 20) -> float:
    """Packets per second one link sustains at one byte per cycle."""
    return link_hz / packet_bytes


def software_shortfall(model: SoftwareSchedulerModel, links: int = 5,
                       backlog: int = 256) -> float:
    """How many times too slow software is for the paper's chip.

    The chip schedules five output ports at full rate; this returns the
    ratio of required to achievable packet-scheduling throughput for a
    same-speed CPU (values above 1 mean software cannot keep up).
    """
    required = links * hardware_packet_rate()
    achievable = model.max_packets_per_second(backlog)
    return required / achievable
