"""Baseline designs the paper compares against (section 6)."""

from repro.baselines.comparison import (
    DisciplineResult,
    WorkloadChannel,
    compare_disciplines,
)
from repro.baselines.fifo_router import FifoLinkScheduler
from repro.baselines.priority_forwarding import (
    DEFAULT_QUEUE_DEPTH,
    PriorityForwardingScheduler,
)
from repro.baselines.software_edf import (
    SoftwareSchedulerModel,
    hardware_packet_rate,
    software_shortfall,
)
from repro.baselines.vc_priority import VcPriorityScheduler

__all__ = [
    "DEFAULT_QUEUE_DEPTH",
    "DisciplineResult",
    "FifoLinkScheduler",
    "PriorityForwardingScheduler",
    "SoftwareSchedulerModel",
    "VcPriorityScheduler",
    "WorkloadChannel",
    "compare_disciplines",
    "hardware_packet_rate",
    "software_shortfall",
]
