"""Head-to-head comparison harness for link-scheduling disciplines.

Runs an identical real-time workload through the real-time channel
scheduler and each baseline (FIFO, priority forwarding, virtual-channel
priorities) on the slot simulator, and reports deadline misses and
latency — the experiment behind the section 6 comparison (bench A3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.baselines.fifo_router import FifoLinkScheduler
from repro.baselines.priority_forwarding import PriorityForwardingScheduler
from repro.baselines.vc_priority import VcPriorityScheduler
from repro.channels.spec import TrafficSpec
from repro.model.slotsim import SlotSimulator


@dataclass(frozen=True)
class WorkloadChannel:
    """One connection of a comparison workload."""

    label: str
    spec: TrafficSpec
    local_delays: list[int]    # per hop; deadline = sum
    messages: int
    phase: int = 0             # first logical arrival tick
    links: Optional[list[object]] = None   # defaults to a shared chain

    def arrivals(self) -> list[int]:
        return [self.phase + i * self.spec.i_min
                for i in range(self.messages)]


@dataclass(frozen=True)
class DisciplineResult:
    """Outcome of one discipline on one workload."""

    name: str
    delivered: int
    deadline_misses: int
    mean_latency: float
    max_latency: int

    @property
    def miss_rate(self) -> float:
        if self.delivered == 0:
            return 0.0
        return self.deadline_misses / self.delivered


def _run(name: str, channels: list[WorkloadChannel],
         factory, horizons=None,
         max_ticks: int = 200_000) -> DisciplineResult:
    sim = SlotSimulator(horizons=horizons, scheduler_factory=factory)
    for channel in channels:
        links = channel.links or [f"link{j}"
                                  for j in range(len(channel.local_delays))]
        sim.add_channel(channel.label, links, channel.local_delays,
                        channel.arrivals())
    sim.run_until_drained(max_ticks=max_ticks)
    done = sim.delivered()
    latencies = [p.delivered_tick - p.l0 for p in done]
    return DisciplineResult(
        name=name,
        delivered=len(done),
        deadline_misses=sim.deadline_misses(),
        mean_latency=sum(latencies) / len(latencies) if latencies else 0.0,
        max_latency=max(latencies) if latencies else 0,
    )


def compare_disciplines(
    channels: list[WorkloadChannel],
    *,
    horizon: int = 0,
    vc_levels: int = 2,
    priority_of: Optional[Callable[[str], int]] = None,
    include_approximate: bool = False,
    approx_bin_width: int = 4,
    max_ticks: int = 200_000,
) -> dict[str, DisciplineResult]:
    """Run the workload under every discipline.

    ``priority_of`` maps a channel label to a static priority for the
    priority-forwarding and VC baselines; by default, tighter deadlines
    get higher priority (deadline-monotonic assignment — the best
    static policy available to those designs).
    """
    deadline_by_label = {c.label: sum(c.local_delays) for c in channels}
    if priority_of is None:
        def priority_of(label: str) -> int:
            return 10_000 - deadline_by_label[label]

    def packet_priority(packet) -> int:
        # Slot-simulator payloads are (SlotPacket, hop index) pairs.
        slot_packet, __ = packet.payload
        return priority_of(slot_packet.label)

    ranked = sorted(deadline_by_label, key=lambda l: -priority_of(l))

    def packet_class(packet) -> int:
        # Highest priority -> class 0; clamp into the VC count.
        slot_packet, __ = packet.payload
        rank = ranked.index(slot_packet.label)
        return min(vc_levels - 1,
                   rank * vc_levels // max(1, len(ranked)))

    all_links = {
        link
        for c in channels
        for link in (c.links or [f"link{j}"
                                 for j in range(len(c.local_delays))])
    }
    horizons = {link: horizon for link in all_links}
    results = {
        "real-time": _run("real-time", channels, None, horizons=horizons,
                          max_ticks=max_ticks),
        "fifo": _run("fifo", channels,
                     lambda link: FifoLinkScheduler(), max_ticks=max_ticks),
        "priority-forwarding": _run(
            "priority-forwarding", channels,
            lambda link: PriorityForwardingScheduler(packet_priority),
            max_ticks=max_ticks,
        ),
        "vc-priority": _run(
            "vc-priority", channels,
            lambda link: VcPriorityScheduler(vc_levels, packet_class),
            max_ticks=max_ticks,
        ),
    }
    if include_approximate:
        from repro.extensions.approx_scheduler import ApproximateEdfScheduler

        results["approximate-edf"] = _run(
            "approximate-edf", channels,
            lambda link: ApproximateEdfScheduler(
                horizon=horizon, bin_width=approx_bin_width),
            max_ticks=max_ticks,
        )
    return results
