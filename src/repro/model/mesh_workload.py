"""Mesh-scale workloads on the slot-level simulator.

The paper's future work (section 7) folds the router into a
multicomputer network simulator (PP-MESS-SIM) "to evaluate the design
under larger network configurations and more diverse traffic
patterns".  This module is that bridge at slot granularity: it maps
real mesh routes onto the :class:`~repro.model.slotsim.SlotSimulator`'s
links — one scheduler per ``(node, out_port)`` — so network-wide
workloads (uniform random, transpose, hotspot) can be swept far faster
than the cycle-accurate fabric allows, with any link discipline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.channels.admission import (
    AdmissionController,
    AdmissionError,
    HopDescriptor,
)
from repro.channels.routing import dimension_ordered_route
from repro.channels.spec import FlowRequirements, TrafficSpec
from repro.model.slotsim import SlotSimulator
from repro.network.topology import Mesh, Node


@dataclass
class MeshWorkloadResult:
    """Outcome of one mesh-wide slot-level run."""

    admitted: int
    requested: int
    delivered: int
    deadline_misses: int
    mean_latency_ticks: float
    max_link_utilisation: float

    @property
    def admission_ratio(self) -> float:
        return self.admitted / self.requested if self.requested else 0.0


class MeshWorkload:
    """Admitted random traffic on a mesh, run at slot granularity."""

    def __init__(self, width: int, height: int, *,
                 scheduler_factory=None,
                 admission: Optional[AdmissionController] = None) -> None:
        self.mesh = Mesh(width, height)
        self.admission = admission or AdmissionController(hop_overhead=0)
        self.sim = SlotSimulator(scheduler_factory=scheduler_factory)
        self._count = 0
        #: Refused :meth:`add_channel` calls tallied by structured
        #: :class:`AdmissionError` reason.
        self.rejections: dict[str, int] = {}

    def add_channel(self, src: Node, dst: Node, spec: TrafficSpec,
                    deadline: int, messages: int,
                    phase: int = 0) -> bool:
        """Admit and install one channel; False when admission refuses."""
        route = dimension_ordered_route(src, dst)
        hops = [HopDescriptor(node=node, out_port=port)
                for node, port in route]
        try:
            reservation = self.admission.admit(
                hops, spec, FlowRequirements(deadline=deadline))
        except AdmissionError as exc:
            self.rejections[exc.reason] = (
                self.rejections.get(exc.reason, 0) + 1)
            return False
        links = [(node, port) for node, port in route]
        arrivals = [phase + k * spec.i_min for k in range(messages)]
        self.sim.add_channel(f"ch{self._count}", links,
                             reservation.local_delays, arrivals)
        self._count += 1
        return True

    def add_random_channels(self, count: int, *, seed: int = 0,
                            i_min_choices=(6, 10, 16, 24),
                            messages: int = 20,
                            pattern: Optional[
                                Callable[[Mesh, Node], Node]] = None,
                            ) -> int:
        """Admit up to ``count`` random channels; returns how many."""
        rng = random.Random(seed)
        nodes = list(self.mesh.nodes())
        admitted = 0
        for _ in range(count):
            src = rng.choice(nodes)
            if pattern is not None:
                dst = pattern(self.mesh, src)
                if dst == src:
                    continue
            else:
                dst = rng.choice([n for n in nodes if n != src])
            i_min = rng.choice(list(i_min_choices))
            hops = self.mesh.hop_distance(src, dst) + 1
            deadline = i_min * hops + rng.randrange(0, 2 * i_min)
            if self.add_channel(src, dst, TrafficSpec(i_min=i_min),
                                deadline, messages,
                                phase=rng.randrange(0, i_min)):
                admitted += 1
        self._requested = count
        return admitted

    def run(self, max_ticks: int = 200_000) -> MeshWorkloadResult:
        self.sim.run_until_drained(max_ticks=max_ticks)
        delivered = self.sim.delivered()
        latencies = [p.delivered_tick - p.l0 for p in delivered]
        links = {event.link for event in self.sim.events}
        peak = max((self.sim.link_utilisation(link) for link in links),
                   default=0.0)
        return MeshWorkloadResult(
            admitted=self._count,
            requested=getattr(self, "_requested", self._count),
            delivered=len(delivered),
            deadline_misses=self.sim.deadline_misses(),
            mean_latency_ticks=(sum(latencies) / len(latencies)
                                if latencies else 0.0),
            max_link_utilisation=peak,
        )
