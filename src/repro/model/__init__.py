"""Fast packet-slot-level simulation of the link discipline."""

from repro.model.mesh_workload import MeshWorkload, MeshWorkloadResult
from repro.model.slotsim import (
    ServiceEvent,
    SlotChannel,
    SlotPacket,
    SlotSimulator,
)

__all__ = [
    "MeshWorkload",
    "MeshWorkloadResult",
    "ServiceEvent",
    "SlotChannel",
    "SlotPacket",
    "SlotSimulator",
]
