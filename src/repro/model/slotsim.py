"""Packet-slot-level simulator of real-time channel scheduling.

The cycle-accurate router (:mod:`repro.core.router`) models every byte
and bus grant; that fidelity costs ~20 simulation steps per packet slot
per router.  For large parameter sweeps (horizon ablations, admission
validation, long Figure-7-style runs) this module simulates the *same
link discipline* — the three-queue scheduler of paper Table 1 — at one
step per packet transmission time:

* each scheduled hop (link or reception port) serves one packet per
  tick, chosen by :class:`~repro.core.link_scheduler.ReferenceLinkScheduler`;
* a time-constrained packet transmitted at hop ``j`` in tick ``t``
  becomes available at hop ``j+1`` in tick ``t + 1`` with logical
  arrival time ``l_{j+1} = l_j + d_j``;
* best-effort traffic is modelled as an optional backlog per link that
  soaks up any slot the scheduler leaves to Queue 2.

A dedicated test suite checks that the slot simulator and the
cycle-accurate router serve time-constrained packets in the same order
on shared scenarios.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional

from repro.core.link_scheduler import ReferenceLinkScheduler, ScheduledPacket

LinkId = Hashable


@dataclass
class SlotChannel:
    """One time-constrained connection in the slot simulator.

    ``parents`` describes the hop graph: hop ``j`` receives the packet
    from hop ``parents[j]`` (``-1`` at the source).  The default is a
    linear chain; multicast trees set explicit parents, and a packet
    then fans out into one copy per child hop, like the chip's
    table-driven multicast.
    """

    label: str
    links: list[LinkId]          # scheduled hops, in route order
    local_delays: list[int]      # d_j per hop
    arrivals: list[int]          # source logical arrival times l0(m_i)
    parents: Optional[list[int]] = None

    def __post_init__(self) -> None:
        if len(self.links) != len(self.local_delays):
            raise ValueError("one local delay per hop required")
        if not self.links:
            raise ValueError("channel needs at least one hop")
        if any(d < 1 for d in self.local_delays):
            raise ValueError("local delays must be at least one tick")
        if self.parents is None:
            self.parents = list(range(-1, len(self.links) - 1))
        if len(self.parents) != len(self.links):
            raise ValueError("one parent index per hop required")
        for index, parent in enumerate(self.parents):
            if parent >= index or parent < -1:
                raise ValueError("parents must point to earlier hops")

    def children(self, hop: int) -> list[int]:
        return [j for j, parent in enumerate(self.parents) if parent == hop]

    def roots(self) -> list[int]:
        return self.children(-1)

    @property
    def deadline(self) -> int:
        """Worst root-to-leaf accumulated delay bound."""
        depth = [0] * len(self.links)
        for index, parent in enumerate(self.parents):
            upstream = depth[parent] if parent >= 0 else 0
            depth[index] = upstream + self.local_delays[index]
        return max(depth)

    def arrival_offset(self, hop: int) -> int:
        """Logical-arrival offset of a hop from the source stamp."""
        parent = self.parents[hop]
        if parent < 0:
            return 0
        return self.arrival_offset(parent) + self.local_delays[parent]


@dataclass
class SlotPacket:
    """A message instance travelling through the slot simulator.

    For multicast channels one packet object traverses the shared tree
    prefix once and fans out at branch hops; ``active`` counts hop
    instances still in flight and ``leaf_deliveries`` records each
    destination's arrival.
    """

    channel: SlotChannel
    sequence: int
    l0: int
    active: int = 0
    hop_times: list[int] = field(default_factory=list)
    leaf_deliveries: list[tuple[int, int]] = field(default_factory=list)
    delivered_tick: Optional[int] = None

    @property
    def label(self) -> str:
        return self.channel.label

    def logical_arrival(self, hop: int) -> int:
        return self.l0 + self.channel.arrival_offset(hop)

    def local_deadline(self, hop: int) -> int:
        return self.logical_arrival(hop) + self.channel.local_delays[hop]

    @property
    def end_to_end_deadline(self) -> int:
        return self.l0 + self.channel.deadline

    @property
    def met_deadline(self) -> Optional[bool]:
        """Every destination received its copy by its path's bound."""
        if self.delivered_tick is None:
            return None
        return all(tick <= self.local_deadline(hop)
                   for hop, tick in self.leaf_deliveries)


@dataclass(frozen=True)
class ServiceEvent:
    """One slot of service on one link."""

    tick: int
    link: LinkId
    traffic_class: str           # "TC" or "BE"
    label: Optional[str] = None


class SlotSimulator:
    """Discrete simulator: one step per packet transmission time.

    ``scheduler_factory`` lets comparison experiments substitute a
    baseline link discipline (FIFO, static priority, ...) for the
    real-time channel scheduler; it receives the link id and must
    return an object with the :class:`ReferenceLinkScheduler` service
    interface (``add_tc``, ``add_be``, ``pick``, ``has_on_time``).
    """

    def __init__(self, horizons: Optional[dict[LinkId, int]] = None,
                 scheduler_factory=None) -> None:
        self.horizons = dict(horizons or {})
        self._factory = scheduler_factory
        self._schedulers: dict[LinkId, object] = {}
        self._be_backlog: dict[LinkId, float] = {}
        self.channels: list[SlotChannel] = []
        self.packets: list[SlotPacket] = []
        self._pending: list[SlotPacket] = []   # not yet at their first hop
        self.events: list[ServiceEvent] = []
        self.tick = 0
        self._seq = itertools.count()

    # -- construction ------------------------------------------------------

    def scheduler(self, link: LinkId):
        if link not in self._schedulers:
            if self._factory is not None:
                self._schedulers[link] = self._factory(link)
            else:
                self._schedulers[link] = ReferenceLinkScheduler(
                    horizon=self.horizons.get(link, 0)
                )
        return self._schedulers[link]

    def add_channel(self, label: str, links: list[LinkId],
                    local_delays: list[int],
                    arrivals: Iterable[int],
                    parents: Optional[list[int]] = None) -> SlotChannel:
        """Add a connection with precomputed logical arrival times.

        Pass ``parents`` (one upstream hop index per hop, ``-1`` at
        roots) to describe a multicast tree; the default is a chain.
        """
        channel = SlotChannel(label=label, links=list(links),
                              local_delays=list(local_delays),
                              arrivals=sorted(arrivals),
                              parents=parents)
        self.channels.append(channel)
        for sequence, l0 in enumerate(channel.arrivals):
            packet = SlotPacket(channel=channel, sequence=sequence, l0=l0)
            self.packets.append(packet)
            self._pending.append(packet)
        return channel

    def add_best_effort_backlog(self, link: LinkId,
                                slots: float = float("inf")) -> None:
        """Give a link an (optionally infinite) best-effort backlog."""
        self._be_backlog[link] = self._be_backlog.get(link, 0) + slots
        self.scheduler(link)  # materialise

    # -- simulation ----------------------------------------------------------

    def run(self, ticks: int) -> None:
        for _ in range(ticks):
            self._step()

    def run_until_drained(self, max_ticks: int = 1_000_000) -> None:
        start = self.tick
        while any(p.delivered_tick is None for p in self.packets):
            if self.tick - start > max_ticks:
                raise TimeoutError("slot simulation did not drain")
            self._step()

    def _step(self) -> None:
        now = self.tick
        # Release packets that reach their first hop this tick.  A
        # packet enters the source link's queues at its generation time
        # (we use l0: sources inject at the logical arrival instant,
        # matching a horizon-0 regulator).
        still_pending: list[SlotPacket] = []
        for packet in self._pending:
            if packet.l0 <= now:
                for hop in packet.channel.roots():
                    packet.active += 1
                    self._enqueue(packet, hop, now)
            else:
                still_pending.append(packet)
        self._pending = still_pending

        # Serve one slot per link.  A standing best-effort backlog sits
        # in Queue 2: it loses to on-time time-constrained packets but
        # beats early ones (paper Table 1).
        arrivals_next: list[tuple[SlotPacket, int]] = []
        for link, scheduler in self._schedulers.items():
            backlog = self._be_backlog.get(link, 0)
            if backlog >= 1 and not scheduler.has_on_time(now):
                self._be_backlog[link] = backlog - 1
                self.events.append(ServiceEvent(now, link, "BE"))
                continue
            choice = scheduler.pick(now)
            if choice is None:
                continue
            kind, item = choice
            if kind == "BE":  # pragma: no cover - BE queued explicitly
                self.events.append(ServiceEvent(now, link, "BE"))
                continue
            packet, hop = item.payload
            self.events.append(ServiceEvent(now, link, "TC", packet.label))
            packet.hop_times.append(now)
            packet.active -= 1
            children = packet.channel.children(hop)
            if not children:
                packet.leaf_deliveries.append((hop, now + 1))
                if packet.active == 0:
                    packet.delivered_tick = now + 1
            else:
                packet.active += len(children)
                for child in children:
                    arrivals_next.append((packet, child))
        self.tick = now + 1
        for packet, hop in arrivals_next:
            self._enqueue(packet, hop, self.tick)

    def _enqueue(self, packet: SlotPacket, hop: int, now: int) -> None:
        link = packet.channel.links[hop]
        self.scheduler(link).add_tc(
            ScheduledPacket(
                arrival=packet.logical_arrival(hop),
                deadline=packet.local_deadline(hop),
                payload=(packet, hop),
            ),
            now=now,
        )

    # -- measurements ---------------------------------------------------------

    def deadline_misses(self) -> int:
        return sum(1 for p in self.packets if p.met_deadline is False)

    def delivered(self) -> list[SlotPacket]:
        return [p for p in self.packets if p.delivered_tick is not None]

    def service_order(self, link: LinkId) -> list[tuple[str, int]]:
        """(label, sequence) of TC service on a link, in served order."""
        order = []
        for event in self.events:
            if event.link == link and event.traffic_class == "TC":
                order.append(event.label)
        # Attach sequences by replaying per-label counters.
        counters: dict[str, int] = {}
        result = []
        for label in order:
            counters[label] = counters.get(label, 0)
            result.append((label, counters[label]))
            counters[label] += 1
        return result

    def cumulative_service(self, link: LinkId,
                           bytes_per_slot: int = 20) -> dict[str, list[tuple[int, int]]]:
        """Per-label cumulative service series on one link (Figure 7)."""
        series: dict[str, list[tuple[int, int]]] = {}
        totals: dict[str, int] = {}
        for event in self.events:
            if event.link != link:
                continue
            label = event.label if event.traffic_class == "TC" else "best-effort"
            totals[label] = totals.get(label, 0) + bytes_per_slot
            series.setdefault(label, []).append((event.tick, totals[label]))
        return series

    def link_utilisation(self, link: LinkId) -> float:
        if self.tick == 0:
            return 0.0
        used = sum(1 for e in self.events if e.link == link)
        return used / self.tick

    def average_tc_latency(self) -> float:
        done = [p for p in self.delivered()]
        if not done:
            return 0.0
        return sum(p.delivered_tick - p.l0 for p in done) / len(done)
