"""2-D mesh topology (paper Figure 1).

The routers sit in a ``width x height`` square mesh; node ``(x, y)``
connects east to ``(x+1, y)`` and north to ``(x, y+1)``.  Boundary
links are absent (it is a mesh, not a torus), matching the paper's
target configuration; a torus variant is provided for experiments with
wrap-around links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.ports import DISPLACEMENT, OPPOSITE

Node = tuple[int, int]


@dataclass(frozen=True)
class Mesh:
    """Coordinate arithmetic for a 2-D mesh."""

    width: int
    height: int
    torus: bool = False

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be positive")

    def nodes(self) -> Iterator[Node]:
        for y in range(self.height):
            for x in range(self.width):
                yield (x, y)

    @property
    def node_count(self) -> int:
        return self.width * self.height

    def contains(self, node: Node) -> bool:
        x, y = node
        return 0 <= x < self.width and 0 <= y < self.height

    def neighbor(self, node: Node, direction: int) -> Optional[Node]:
        """Neighbour across a link direction, or None at a mesh edge."""
        dx, dy = DISPLACEMENT[direction]
        x, y = node[0] + dx, node[1] + dy
        if self.torus:
            return (x % self.width, y % self.height)
        if 0 <= x < self.width and 0 <= y < self.height:
            return (x, y)
        return None

    def links(self) -> Iterator[tuple[Node, int, Node]]:
        """All unidirectional links as (node, direction, neighbour)."""
        for node in self.nodes():
            for direction in range(4):
                other = self.neighbor(node, direction)
                if other is not None:
                    yield (node, direction, other)

    def hop_distance(self, a: Node, b: Node) -> int:
        """Minimal hop count between two nodes."""
        dx = abs(a[0] - b[0])
        dy = abs(a[1] - b[1])
        if self.torus:
            dx = min(dx, self.width - dx)
            dy = min(dy, self.height - dy)
        return dx + dy

    def offsets(self, src: Node, dst: Node) -> tuple[int, int]:
        """Signed (x, y) offsets for a best-effort packet header."""
        if self.torus:
            raise NotImplementedError(
                "offset routing is defined for the plain mesh"
            )
        return (dst[0] - src[0], dst[1] - src[1])


def reverse_direction(direction: int) -> int:
    """The input direction a byte arrives on after crossing a link."""
    return OPPOSITE[direction]
