"""Single-link contention harness (the paper's Figure 7 experiment).

"All three connections compete for access to a single network link
with horizon parameter h = 0, where each connection has a continual
backlog of traffic."  This harness reproduces that setup on one
cycle-accurate router chip: each time-constrained connection arrives on
its own input link, every connection is routed to the +x output, a
best-effort backlog is fed through the injection port toward the same
output, and the downstream neighbour is emulated with an ack loop so
wormhole credits keep flowing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.packet import (
    BestEffortPacket,
    PacketMeta,
    Phit,
    TimeConstrainedPacket,
    phits_of,
)
from repro.core.params import MESH_LINKS, RouterParams
from repro.core.ports import EAST, port_mask
from repro.core.router import LinkSignal, RealTimeRouter
from repro.network.stats import ServiceTrace


@dataclass
class LinkConnection:
    """One time-constrained connection competing for the shared link.

    ``delay`` and ``i_min`` are in ticks (20-byte slots), matching the
    units of the paper's connection table for Figure 7.
    """

    label: str
    delay: int
    i_min: int
    packets: int

    def __post_init__(self) -> None:
        if self.delay < 1 or self.i_min < 1:
            raise ValueError("delay and i_min must be positive ticks")


@dataclass
class _Feed:
    connection: LinkConnection
    input_port: int
    connection_id: int
    sent: int = 0
    phits: list[Phit] = field(default_factory=list)
    index: int = 0
    transmit_deadlines: dict[int, int] = field(default_factory=dict)


class SingleLinkHarness:
    """Drives one router so several connections share the +x link."""

    def __init__(self, connections: list[LinkConnection],
                 params: Optional[RouterParams] = None,
                 *, horizon: int = 0,
                 best_effort_backlog: bool = True) -> None:
        if not 1 <= len(connections) <= MESH_LINKS:
            raise ValueError(
                f"between 1 and {MESH_LINKS} connections supported"
            )
        self.params = params or RouterParams()
        self.trace = ServiceTrace(watch_port=EAST)
        self.router = RealTimeRouter(self.params, router_id="f7",
                                     service_hook=self.trace.hook)
        self.router.control.write_horizon(port_mask(EAST), horizon)
        self.best_effort_backlog = best_effort_backlog

        self._feeds: list[_Feed] = []
        for index, connection in enumerate(connections):
            connection_id = index
            self.router.control.program_connection(
                incoming_id=connection_id, outgoing_id=connection_id,
                delay=connection.delay, port_mask=port_mask(EAST),
            )
            self._feeds.append(_Feed(
                connection=connection,
                input_port=(index + 1) % MESH_LINKS,  # WEST, NORTH, SOUTH
                connection_id=connection_id,
            ))
        self.cycle = 0
        self.deadline_misses = 0
        self._last_tc_meta: dict[int, PacketMeta] = {}

    # ------------------------------------------------------------------

    def _next_phit(self, feed: _Feed) -> Optional[Phit]:
        """The next byte of this connection's packet stream, if due."""
        if feed.index >= len(feed.phits):
            if feed.sent >= feed.connection.packets:
                return None
            # Next message: logical arrival at tick sent * i_min; feed
            # it onto the wire exactly at that tick (continual backlog:
            # a packet is always just arriving or waiting).
            due_cycle = (feed.sent * feed.connection.i_min
                         * self.params.slot_cycles)
            if self.cycle < due_cycle:
                return None
            arrival_tick = feed.sent * feed.connection.i_min
            packet = TimeConstrainedPacket(
                connection_id=feed.connection_id,
                header_deadline=arrival_tick,
                meta=PacketMeta(
                    connection_label=feed.connection.label,
                    sequence=feed.sent,
                    absolute_deadline=(arrival_tick
                                       + feed.connection.delay),
                    injected_cycle=self.cycle,
                ),
            )
            feed.phits = phits_of(packet, self.params)
            feed.index = 0
            feed.sent += 1
        phit = feed.phits[feed.index]
        feed.index += 1
        return phit

    def step(self, cycles: int = 1) -> None:
        for _ in range(cycles):
            # Feed each connection's bytes on its own input link.
            for feed in self._feeds:
                phit = self._next_phit(feed)
                if phit is not None:
                    self.router.link_in[feed.input_port] = LinkSignal(
                        phit=phit)
            # Keep the best-effort injection port saturated.
            if (self.best_effort_backlog
                    and self.router.be_inject_backlog < 2):
                self.router.inject_be(BestEffortPacket(
                    x_offset=1, y_offset=0, payload=bytes(60),
                ))
            self.router.step(self.cycle)
            # Emulate the downstream node: ack every best-effort byte
            # that leaves on +x so credits never run dry.
            out = self.router.link_out[EAST]
            ack = out.phit is not None and out.phit.vc == "BE"
            if out.phit is not None and out.phit.vc == "TC":
                self._check_deadline(out.phit)
            self.router.link_in[EAST] = LinkSignal(ack=ack)
            self.cycle += 1

    def _check_deadline(self, phit: Phit) -> None:
        """On each packet's last byte, compare against its deadline."""
        if not phit.last or phit.packet is None:
            return
        meta = getattr(phit.packet, "meta", None)
        if meta is None or meta.absolute_deadline is None:
            return
        deadline_cycle = (meta.absolute_deadline + 1) * self.params.slot_cycles
        if self.cycle > deadline_cycle:
            self.deadline_misses += 1

    # ------------------------------------------------------------------

    def run(self, cycles: int) -> "SingleLinkHarness":
        self.step(cycles)
        return self

    def service_bytes(self, label: str) -> int:
        return self.trace.totals.get(label, 0)

    def service_table(self, sample_every: int = 1000) -> list[dict]:
        """Figure-7-style rows: cumulative bytes per label over time."""
        rows = []
        for cycle in range(sample_every, self.cycle + 1, sample_every):
            row = {"cycle": cycle}
            for label in self.trace.labels():
                row[label] = self.trace.cumulative_at(label, cycle)
            rows.append(row)
        return rows
