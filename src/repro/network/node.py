"""Host node: the processor attached to each router.

The host runs the application side of the system: it holds back
time-constrained messages until their release ticks (the source
regulator's rate-based flow control), feeds the router's two injection
ports, drains the shared reception port into the delivery log, and
polls any attached traffic sources.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.packet import BestEffortPacket, TimeConstrainedPacket
from repro.core.router import RealTimeRouter
from repro.network.stats import DeliveryLog
from repro.observability.trace import DELIVER, RELEASE

#: A traffic source: called once per cycle, returns send requests.
SourceFn = Callable[[int], list["Send"]]


@dataclass(frozen=True)
class Send:
    """One send request produced by a traffic source.

    For time-constrained sends set ``channel`` (established handle) and
    optionally ``payload``; for best-effort sends set ``destination``
    and ``payload``.
    """

    traffic_class: str                      # "TC" or "BE"
    channel: object = None
    destination: Optional[tuple[int, int]] = None
    payload: bytes = b""


class HostNode:
    """The processor (software side) of one mesh node."""

    def __init__(self, node: tuple[int, int], router: RealTimeRouter,
                 log: DeliveryLog, slot_cycles: int) -> None:
        self.node = node
        self.router = router
        self.log = log
        self.slot_cycles = slot_cycles
        self._release_heap: list[tuple[int, int, TimeConstrainedPacket]] = []
        self._tiebreak = itertools.count()
        self.sources: list[SourceFn] = []
        self.network = None  # set by MeshNetwork for source sends
        #: Packet-lifecycle tracer (set by MeshNetwork.enable_tracing);
        #: None keeps the hot path allocation-free.
        self.tracer = None
        #: Sharded execution (see :mod:`repro.shard`): False when this
        #: node's router belongs to another worker.  The host still
        #: steps fully replicated — sources fire, releases pop, trace
        #: events stamp — but skips the inject/drain interactions with
        #: its (inert, never-stepping) replica router; deliveries reach
        #: the log through the shard barrier instead.
        self.shard_owned = True

    def attach_source(self, source: SourceFn) -> None:
        self.sources.append(source)

    def queue_tc(self, packets: list[TimeConstrainedPacket],
                 release_tick: int) -> None:
        """Hold packets until their regulated release tick."""
        release_cycle = release_tick * self.slot_cycles
        for packet in packets:
            heapq.heappush(
                self._release_heap,
                (release_cycle, next(self._tiebreak), packet),
            )

    def send_be(self, packet: BestEffortPacket, cycle: int) -> None:
        packet.meta.injected_cycle = cycle
        packet.meta.source = self.node
        if self.shard_owned:
            self.router.inject_be(packet)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Engine fast-forward contract (see ``docs/performance.md``).

        The host's self-scheduled work is the release heap and its
        traffic sources.  Sources advertise their next firing through
        ``next_fire_cycle``; a source without that method (or one that
        must observe every cycle, like a per-cycle random process)
        keeps the host — and therefore the fabric — stepping every
        cycle, which preserves exact legacy behaviour.
        """
        if self.shard_owned and self.router.delivered:
            return cycle  # reception port waiting to be drained
        bound: Optional[int] = None
        for source in self.sources:
            probe = getattr(source, "next_fire_cycle", None)
            if probe is None:
                return cycle  # legacy source: poll every cycle
            nxt = probe(cycle)
            if nxt is None:
                continue  # exhausted: never fires again
            if nxt <= cycle:
                return cycle
            if bound is None or nxt < bound:
                bound = nxt
        if self._release_heap:
            head = self._release_heap[0][0]
            if head <= cycle:
                return cycle
            if bound is None or head < bound:
                bound = head
        return bound

    def step(self, cycle: int) -> None:
        """Run the host for one cycle (sources, releases, deliveries)."""
        for source in self.sources:
            for send in source(cycle):
                self._dispatch(send, cycle)
        while self._release_heap and self._release_heap[0][0] <= cycle:
            __, __, packet = heapq.heappop(self._release_heap)
            packet.meta.injected_cycle = cycle
            packet.meta.source = self.node
            if self.shard_owned:
                self.router.inject_tc(packet)
            if self.tracer is not None:
                self.tracer.emit(cycle, RELEASE, meta=packet.meta,
                                 node=self.node, traffic_class="TC")
        if not self.shard_owned:
            return
        for packet in self.router.take_delivered():
            if (isinstance(packet, BestEffortPacket)
                    and packet.meta.relay_path):
                self._relay(packet)
                continue
            record = self.log.add(packet, delivered_node=self.node)
            if self.tracer is not None:
                self.tracer.emit(
                    cycle, DELIVER, meta=packet.meta, node=self.node,
                    traffic_class=record.traffic_class,
                    info={
                        "injected_cycle": record.injected_cycle,
                        "delivered_cycle": record.delivered_cycle,
                        "latency_cycles": record.latency_cycles,
                        "deadline_met": record.deadline_met,
                        "duplicate": record.duplicate,
                        "delivered_node": list(self.node),
                    },
                )

    def _relay(self, packet: BestEffortPacket) -> None:
        """Forward a relayed best-effort packet toward its next waypoint.

        Host-software store-and-forward: wormhole routing is hard-wired
        dimension order, so steering around a dead link means hopping
        through intermediate hosts.  The metadata (packet id, injection
        cycle, checksum, label) travels with the payload, so the final
        delivery is logged as one end-to-end transfer.
        """
        next_target = packet.meta.relay_path[0]
        packet.meta.relay_path = packet.meta.relay_path[1:]
        if self.network is not None:
            x_offset, y_offset = self.network.mesh.offsets(
                self.node, next_target)
        else:
            x_offset = next_target[0] - self.node[0]
            y_offset = next_target[1] - self.node[1]
        self.router.inject_be(BestEffortPacket(
            x_offset=x_offset, y_offset=y_offset,
            payload=packet.payload, meta=packet.meta,
        ))

    # -- checkpointing (see docs/checkpointing.md) ------------------------

    def state(self, ctx) -> dict:
        """Host state: the release heap, tiebreak counter and sources."""
        value = next(self._tiebreak)
        self._tiebreak = itertools.count(value)
        return {
            "release_heap": [
                [release_cycle, tiebreak, ctx.save_tc_packet(packet)]
                for release_cycle, tiebreak, packet in self._release_heap
            ],
            "tiebreak": value,
            "sources": [
                source.state() if hasattr(source, "state") else None
                for source in self.sources
            ],
        }

    def load_state(self, state: dict, ctx) -> None:
        """Overlay host state; sources must be re-attached in the same
        order as the checkpointed run before calling this."""
        # The saved list is already a valid heap (saved in heap order).
        self._release_heap = [
            (release_cycle, tiebreak, ctx.load_tc_packet(packet))
            for release_cycle, tiebreak, packet in state["release_heap"]
        ]
        self._tiebreak = itertools.count(int(state["tiebreak"]))
        if len(state["sources"]) != len(self.sources):
            raise ValueError(
                f"host {self.node}: checkpoint has "
                f"{len(state['sources'])} sources, run has "
                f"{len(self.sources)}"
            )
        for source, source_state in zip(self.sources, state["sources"]):
            if source_state is not None:
                source.load_state(source_state)

    def _dispatch(self, send: Send, cycle: int) -> None:
        if self.network is None:
            raise RuntimeError("host is not attached to a network")
        if send.traffic_class == "TC":
            self.network.send_message(send.channel, send.payload,
                                      at_cycle=cycle)
        elif send.traffic_class == "BE":
            self.network.send_best_effort(self.node, send.destination,
                                          send.payload, at_cycle=cycle)
        else:
            raise ValueError(f"unknown traffic class {send.traffic_class!r}")
