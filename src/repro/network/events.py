"""Link lifecycle events shared by the network and the fault layer.

:class:`MeshNetwork` emits administrative events when links are failed
or repaired; the :class:`~repro.faults.watchdog.LinkWatchdog` emits
``link-dead`` events when it *detects* a silent failure from missed
link-level acknowledgements.  Both feed the
:class:`~repro.faults.recovery.RecoveryController` through the same
tiny publish/subscribe mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

Node = tuple[int, int]

#: Administrative event kinds emitted by :class:`MeshNetwork`.
LINK_FAILED = "link-failed"
LINK_REPAIRED = "link-repaired"
#: Detection event kind emitted by the watchdog.
LINK_DEAD = "link-dead"


@dataclass(frozen=True)
class LinkEvent:
    """One link lifecycle transition on a directed link."""

    kind: str          # LINK_FAILED | LINK_REPAIRED | LINK_DEAD
    node: Node         # link source router
    direction: int     # output port (EAST/WEST/NORTH/SOUTH)
    cycle: int         # engine cycle at which the transition happened

    @property
    def link(self) -> tuple[Node, int]:
        return (self.node, self.direction)


class EventBus:
    """Minimal synchronous fan-out of :class:`LinkEvent`."""

    def __init__(self) -> None:
        self._subscribers: list[Callable[[LinkEvent], None]] = []

    def subscribe(self, callback: Callable[[LinkEvent], None]) -> None:
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[LinkEvent], None]) -> None:
        self._subscribers.remove(callback)

    def emit(self, event: LinkEvent) -> None:
        for callback in list(self._subscribers):
            callback(event)
