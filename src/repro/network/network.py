"""The mesh multicomputer: routers wired together, plus the facade API.

:class:`MeshNetwork` assembles a ``width x height`` mesh of
:class:`~repro.core.router.RealTimeRouter` chips, connects their links
through the synchronous engine (one-cycle link latency), runs a
:class:`~repro.channels.manager.ChannelManager` as the protocol
software, and exposes the operations the examples and experiments use:
establish channels, send messages on them, fire best-effort packets,
attach traffic sources, run, and inspect statistics.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.channels.admission import AdmissionController
from repro.channels.manager import ChannelManager, RealTimeChannel
from repro.channels.spec import TrafficSpec
from repro.core.packet import BestEffortPacket, PacketMeta
from repro.core.params import MESH_LINKS, RouterParams
from repro.core.ports import OPPOSITE
from repro.core.router import LinkSignal, RealTimeRouter
from repro.network.engine import SynchronousEngine
from repro.network.node import HostNode
from repro.network.stats import DeliveryLog, ServiceTrace
from repro.network.topology import Mesh, Node


class MeshNetwork:
    """A mesh of real-time routers with hosts and protocol software."""

    def __init__(
        self,
        width: int,
        height: int,
        params: Optional[RouterParams] = None,
        *,
        on_memory_full: str = "error",
        cut_through: bool = False,
        be_routing: str = "dimension",
        torus: bool = False,
        clock_skews: Optional[dict[Node, int]] = None,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        self.params = params or RouterParams()
        clock_skews = clock_skews or {}
        # Time-constrained routing is table-driven, so the same chips
        # assemble into a torus unchanged ("the architecture directly
        # extends to other network topologies", paper section 1); the
        # offset-based best-effort routing stays mesh-only.
        self.mesh = Mesh(width, height, torus=torus)
        self.log = DeliveryLog(self.params.slot_cycles)
        self.engine = SynchronousEngine()
        self.routers: dict[Node, RealTimeRouter] = {}
        self.hosts: dict[Node, HostNode] = {}
        self._traces: list[ServiceTrace] = []
        self._failed_links: set[tuple[Node, int]] = set()

        for node in self.mesh.nodes():
            router = RealTimeRouter(
                self.params, router_id=node, on_memory_full=on_memory_full,
                cut_through=cut_through, be_routing=be_routing,
                clock_skew_ticks=clock_skews.get(node, 0),
            )
            host = HostNode(node, router, self.log, self.params.slot_cycles)
            host.network = self
            self.routers[node] = router
            self.hosts[node] = host
            self.engine.add_component(host)
            self.engine.add_component(router)

        # Wire every link: a router's output signal this cycle becomes
        # its neighbour's input signal next cycle.
        for node, direction, neighbor in self.mesh.links():
            self.engine.add_wiring(
                self._make_link_transfer(node, direction, neighbor)
            )

        self.admission = admission or AdmissionController(self.params)
        self.manager = ChannelManager(self.routers, self.admission,
                                      self.params)

    def _make_link_transfer(self, node: Node, direction: int,
                            neighbor: Node):
        source = self.routers[node]
        sink = self.routers[neighbor]
        into = OPPOSITE[direction]
        failed = self._failed_links
        link = (node, direction)

        def transfer() -> None:
            if link in failed:
                return  # a failed link carries nothing
            signal = source.link_out[direction]
            sink.link_in[into] = LinkSignal(phit=signal.phit,
                                            ack=signal.ack)
        return transfer

    # ------------------------------------------------------------------
    # Link failures and recovery
    # ------------------------------------------------------------------

    def fail_link(self, node: Node, direction: int) -> None:
        """Cut one unidirectional link (nothing crosses it any more).

        In-flight bytes on the link are lost; a wormhole packet that
        was crossing it stalls, and time-constrained packets already
        scheduled onto the dead output port stay buffered — exactly the
        failure modes that motivate rerouting over disjoint paths.
        """
        if self.mesh.neighbor(node, direction) is None:
            raise ValueError("no link in that direction")
        self._failed_links.add((node, direction))

    def repair_link(self, node: Node, direction: int) -> None:
        self._failed_links.discard((node, direction))

    @property
    def failed_links(self) -> set[tuple[Node, int]]:
        return set(self._failed_links)

    def recover_channel(self, channel) -> object:
        """Reroute a unicast channel around all currently failed links.

        Chooses the shortest surviving path (any path — table-driven
        routing is not restricted to dimension order) and re-establishes
        the channel on it; returns the replacement handle.
        """
        from repro.channels.routing import shortest_route_avoiding

        route = shortest_route_avoiding(
            self.mesh.width, self.mesh.height,
            channel.source, channel.destinations[0],
            failed=self._failed_links, torus=self.mesh.torus,
        )
        return self.manager.reroute(channel, route)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    @property
    def cycle(self) -> int:
        return self.engine.cycle

    @property
    def current_tick(self) -> int:
        return self.engine.cycle // self.params.slot_cycles

    def run(self, cycles: int) -> int:
        """Advance the whole fabric by ``cycles`` chip cycles."""
        return self.engine.run(cycles)

    def run_ticks(self, ticks: int) -> int:
        """Advance by whole packet-slot times."""
        return self.run(ticks * self.params.slot_cycles)

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Run until every router is idle (all traffic delivered)."""
        return self.engine.run_until(
            lambda: all(r.idle for r in self.routers.values()),
            max_cycles=max_cycles,
        )

    # ------------------------------------------------------------------
    # Real-time channels
    # ------------------------------------------------------------------

    def establish_channel(
        self,
        source: Node,
        destination: Node | Sequence[Node],
        spec: TrafficSpec,
        deadline: int,
        **kwargs: object,
    ) -> RealTimeChannel:
        """Establish a real-time channel (see ChannelManager.establish)."""
        is_unicast = (isinstance(destination, tuple)
                      and len(destination) == 2
                      and all(isinstance(c, int) for c in destination))
        if self.mesh.torus and "route" not in kwargs and is_unicast:
            # On a torus the shortest path may cross a wrap link, which
            # dimension-ordered construction never uses; route by BFS.
            from repro.channels.routing import shortest_route_avoiding

            kwargs["route"] = shortest_route_avoiding(
                self.mesh.width, self.mesh.height, source, destination,
                failed=self._failed_links, torus=True,
            )
        return self.manager.establish(source, destination, spec, deadline,
                                      **kwargs)

    def teardown_channel(self, channel: RealTimeChannel) -> None:
        self.manager.teardown(channel)

    def send_message(self, channel: RealTimeChannel, payload: bytes = b"",
                     at_cycle: Optional[int] = None) -> int:
        """Send one message on a channel; returns its logical arrival.

        The message is stamped at the current tick, fragmented into
        packets, and held by the source host until the regulator's
        release tick.
        """
        cycle = self.cycle if at_cycle is None else at_cycle
        now_tick = cycle // self.params.slot_cycles
        packets, arrival, release = channel.make_message(payload, now_tick)
        self.hosts[channel.source].queue_tc(packets, release)
        return arrival

    # ------------------------------------------------------------------
    # Best-effort traffic
    # ------------------------------------------------------------------

    def send_best_effort(self, source: Node, destination: Node,
                         payload: bytes = b"",
                         at_cycle: Optional[int] = None) -> BestEffortPacket:
        """Inject one wormhole packet from ``source`` to ``destination``."""
        if not self.mesh.contains(source) or not self.mesh.contains(destination):
            raise ValueError("source or destination outside the mesh")
        x_offset, y_offset = self.mesh.offsets(source, destination)
        packet = BestEffortPacket(
            x_offset=x_offset, y_offset=y_offset, payload=payload,
            meta=PacketMeta(source=source, destination=destination),
        )
        cycle = self.cycle if at_cycle is None else at_cycle
        packet.meta.injected_cycle = cycle
        self.routers[source].inject_be(packet)
        return packet

    # ------------------------------------------------------------------
    # Sources and instrumentation
    # ------------------------------------------------------------------

    def attach_source(self, node: Node, source) -> None:
        """Attach a traffic source (see repro.traffic) to a host."""
        self.hosts[node].attach_source(source)

    def trace_service(self, node: Node, port: int) -> ServiceTrace:
        """Record cumulative per-connection service on one output port."""
        trace = ServiceTrace(watch_port=port)
        router = self.routers[node]
        if router.service_hook is not None:
            previous = router.service_hook

            def chained(cycle: int, p: int, cls: str, meta) -> None:
                previous(cycle, p, cls, meta)
                trace.hook(cycle, p, cls, meta)

            router.service_hook = chained
        else:
            router.service_hook = trace.hook
        self._traces.append(trace)
        return trace


def build_mesh_network(width: int, height: int,
                       params: Optional[RouterParams] = None,
                       **kwargs: object) -> MeshNetwork:
    """Convenience constructor mirroring the paper's 4x4 mesh setup."""
    return MeshNetwork(width, height, params, **kwargs)
