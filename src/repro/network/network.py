"""The mesh multicomputer: routers wired together, plus the facade API.

:class:`MeshNetwork` assembles a ``width x height`` mesh of
:class:`~repro.core.router.RealTimeRouter` chips, connects their links
through the synchronous engine (one-cycle link latency), runs a
:class:`~repro.channels.manager.ChannelManager` as the protocol
software, and exposes the operations the examples and experiments use:
establish channels, send messages on them, fire best-effort packets,
attach traffic sources, run, and inspect statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.channels.admission import AdmissionController
from repro.channels.manager import ChannelManager, RealTimeChannel
from repro.channels.spec import TrafficSpec
from repro.core.packet import (
    BestEffortPacket,
    PacketMeta,
    Phit,
    load_packet_id_counter_state,
    packet_id_counter_state,
)
from repro.core.params import MESH_LINKS, RouterParams
from repro.core.ports import OPPOSITE
from repro.core.router import LinkSignal, RealTimeRouter
from repro.network.engine import SynchronousEngine
from repro.network.events import (
    LINK_FAILED,
    LINK_REPAIRED,
    EventBus,
    LinkEvent,
)
from repro.network.node import HostNode
from repro.network.stats import DeliveryLog, FaultCounters, ServiceTrace
from repro.network.topology import Mesh, Node
from repro.observability import (
    DEFAULT_LATENCY_BUCKETS,
    ENQUEUE,
    MetricsRegistry,
    PacketTracer,
    SnapshotEmitter,
)

#: A link corruptor: maps each phit crossing the link to a (possibly
#: modified) phit, or ``None`` to suppress it entirely.
Corruptor = Callable[[Phit], Optional[Phit]]


@dataclass
class LinkMonitor:
    """Per-directed-link health bookkeeping, updated by the wiring layer.

    Models what line-level hardware can observe: whether offered phits
    made it across (a dead link returns no acknowledgement, so
    ``missed_transfers`` grows while the sender keeps offering), and
    how many bytes were lost, drained, or corrupted.  The watchdog
    reads ``missed_transfers``; the counters feed
    :class:`~repro.network.stats.FaultCounters`.
    """

    missed_transfers: int = 0      # consecutive offered-but-lost phits
    bytes_lost: int = 0            # phits that died on the failed link
    bytes_drained: int = 0         # stalled wormhole bytes drained away
    bytes_corrupted: int = 0       # phits modified by injected corruption
    packets_dropped: int = 0       # whole packets suppressed by injection
    #: Best-effort bytes lost since the last failure whose credits have
    #: not yet been compensated (consumed by drain-mode entry).
    be_lost_uncompensated: int = 0


class _ShardCapture:
    """Wire-level capture points for sharded execution.

    Created unconditionally (inactive) so the link-transfer closures
    can reference it without indirection; a
    :class:`repro.shard.runtime.ShardRuntime` activates it and drains
    the per-cycle lists at its boundary barrier.  Inactive, each hook
    costs one attribute test on the already-filtered paths.
    """

    __slots__ = ("active", "owned", "boundary_out", "writes", "touched",
                 "ack_bumps")

    def __init__(self) -> None:
        self.active = False
        #: nodes whose routers this worker steps.
        self.owned: frozenset = frozenset()
        #: owned links whose sink router lives on another worker.
        self.boundary_out: frozenset = frozenset()
        #: (link, phit, ack) — this cycle's writes onto boundary links.
        self.writes: list = []
        #: owned links whose monitor was touched this cycle.
        self.touched: list = []
        #: foreign-owned drain-ack keys bumped by this cycle's transfers.
        self.ack_bumps: list = []


class MeshNetwork:
    """A mesh of real-time routers with hosts and protocol software."""

    def __init__(
        self,
        width: int,
        height: int,
        params: Optional[RouterParams] = None,
        *,
        on_memory_full: str = "error",
        cut_through: bool = False,
        be_routing: str = "dimension",
        torus: bool = False,
        clock_skews: Optional[dict[Node, int]] = None,
        admission: Optional[AdmissionController] = None,
        engine: str = "exact",
    ) -> None:
        self.params = params or RouterParams()
        clock_skews = clock_skews or {}
        # Time-constrained routing is table-driven, so the same chips
        # assemble into a torus unchanged ("the architecture directly
        # extends to other network topologies", paper section 1); the
        # offset-based best-effort routing stays mesh-only.
        self.mesh = Mesh(width, height, torus=torus)
        self.log = DeliveryLog(self.params.slot_cycles)
        self.engine = SynchronousEngine(mode=engine)
        #: Monotone counter bumped whenever any link monitor's
        #: ``missed_transfers`` grows; the watchdog keys its O(1)
        #: verdict cache on it (a one-element list so the wiring
        #: closures can bump it without attribute lookups on self).
        self.monitor_miss_epoch = [0]
        self.routers: dict[Node, RealTimeRouter] = {}
        self.hosts: dict[Node, HostNode] = {}
        self._traces: list[ServiceTrace] = []
        self._failed_links: set[tuple[Node, int]] = set()
        #: Failed links currently in drain mode: best-effort phits that
        #: die on them are acknowledged back to the sender so stalled
        #: worms drain out instead of deadlocking (recovery layer).
        self._draining_links: set[tuple[Node, int]] = set()
        self._link_corruptors: dict[tuple[Node, int], Corruptor] = {}
        #: Spoofed acknowledgements owed to link senders, applied at
        #: most one per link per cycle by :meth:`_apply_drain_acks`.
        self._drain_acks: dict[tuple[Node, int], int] = {}
        self.link_monitors: dict[tuple[Node, int], LinkMonitor] = {}
        #: Link lifecycle events (administrative + watchdog detections).
        self.events = EventBus()
        #: Recovery-layer counters (router/monitor counters are merged
        #: in by :meth:`fault_counters`).
        self.fault_stats = FaultCounters()
        #: Links that software *knows* are down (announced failures and
        #: watchdog detections) — what degraded/relayed best-effort
        #: routing avoids.  Distinct from ``_failed_links``, which is
        #: physical truth the software may not have discovered yet.
        self.routing_avoid: set[tuple[Node, int]] = set()
        #: Observers of time-constrained / best-effort sends (the
        #: recovery controller's retransmit ledger taps these).  TC
        #: hooks receive ``(channel, packets, payload)``.
        self.tc_send_hooks: list[Callable] = []
        self.be_send_hooks: list[Callable[[BestEffortPacket], None]] = []
        #: Sharded-execution hooks (see :mod:`repro.shard`): the wire
        #: capture referenced by the transfer closures below, and the
        #: installed runtime (None in single-process runs).
        self._shard_capture = _ShardCapture()
        self._shard = None

        for node in self.mesh.nodes():
            router = RealTimeRouter(
                self.params, router_id=node, on_memory_full=on_memory_full,
                cut_through=cut_through, be_routing=be_routing,
                clock_skew_ticks=clock_skews.get(node, 0),
            )
            host = HostNode(node, router, self.log, self.params.slot_cycles)
            host.network = self
            self.routers[node] = router
            self.hosts[node] = host
            # Hosts and routers are *local* components: all of their
            # inputs arrive through the declared wiring, their peer, or
            # an explicit wake from the send APIs below.
            self.engine.add_component(host, local=True)
            self.engine.add_component(router, local=True)
            self.engine.bind_peers(host, router)

        # Wire every link: a router's output signal this cycle becomes
        # its neighbour's input signal next cycle.  The source/sink
        # declarations are the event-scheduler locality contract: a
        # router that did not step has empty link outputs, so its
        # outgoing transfers are provable no-ops.
        for node, direction, neighbor in self.mesh.links():
            self.link_monitors[(node, direction)] = LinkMonitor()
            transfer, idle_check = self._make_link_transfer(
                node, direction, neighbor
            )
            self.engine.add_wiring(transfer, idle_check=idle_check,
                                   source=self.routers[node],
                                   sinks=(self.routers[neighbor],))
        # After every link transfer, so spoofed acknowledgements land
        # on top of (never underneath) the genuine reverse-link signal.
        # No source: it owes acks independently of router activity.
        self.engine.add_wiring(self._apply_drain_acks,
                               idle_check=self._drain_acks_idle,
                               sinks=self._drain_ack_sinks)

        self.admission = admission or AdmissionController(self.params)
        self.manager = ChannelManager(self.routers, self.admission,
                                      self.params)

        #: Packet-lifecycle tracer; ``None`` until
        #: :meth:`enable_tracing` — the disabled hot path is a single
        #: ``is not None`` test at every emit site.
        self.tracer: Optional[PacketTracer] = None
        #: Installed periodic snapshot emitter (see
        #: :meth:`enable_snapshots`).
        self.snapshotter: Optional[SnapshotEmitter] = None
        #: Metrics registry pre-wired with probes over every counter
        #: the fabric already keeps (engine, schedulers, fault layer,
        #: delivery log) plus per-class delivery latency histograms.
        self.metrics = MetricsRegistry()
        self._register_default_metrics()

    def _make_link_transfer(self, node: Node, direction: int,
                            neighbor: Node):
        source = self.routers[node]
        sink = self.routers[neighbor]
        into = OPPOSITE[direction]
        failed = self._failed_links
        draining = self._draining_links
        corruptors = self._link_corruptors
        drain_acks = self._drain_acks
        link = (node, direction)
        #: The link whose sender this link's ack bits serve: acks
        #: crossing ``(node, direction)`` acknowledge bytes the
        #: neighbour sent on its opposite-facing output.
        served = (neighbor, into)
        monitor = self.link_monitors[link]
        miss_epoch = self.monitor_miss_epoch
        cap = self._shard_capture

        def transfer() -> None:
            signal = source.link_out[direction]
            if cap.active and signal.phit is not None:
                # Every monitor mutation below happens under an
                # offered phit; the touched list is barrier B's
                # broadcast set.
                cap.touched.append(link)
            if link in failed:
                # Nothing crosses a dead link; account for what died.
                if signal.phit is not None:
                    monitor.missed_transfers += 1
                    miss_epoch[0] += 1
                    monitor.bytes_lost += 1
                    if signal.phit.vc == "BE":
                        if link in draining:
                            monitor.bytes_drained += 1
                            drain_acks[link] = drain_acks.get(link, 0) + 1
                        else:
                            monitor.be_lost_uncompensated += 1
                if signal.ack:
                    # The ack acknowledged a byte the neighbour really
                    # delivered here; it can never be resent, so spoof
                    # it back or the neighbour's credits leak forever.
                    drain_acks[served] = drain_acks.get(served, 0) + 1
                    if cap.active and neighbor not in cap.owned:
                        # The served key belongs to another worker's
                        # link; ship the bump so its owner (and every
                        # replica) applies it authoritatively.
                        cap.ack_bumps.append(served)
                return
            phit = signal.phit
            if phit is not None:
                # The line acknowledged a transfer (healthy link), so
                # the watchdog's miss counter resets — even if injected
                # corruption mangles the payload below.
                monitor.missed_transfers = 0
                corruptor = corruptors.get(link)
                if corruptor is not None:
                    mangled = corruptor(phit)
                    if mangled is None:
                        monitor.packets_dropped += phit.last
                        if phit.vc == "BE":
                            # The sender spent a credit on this byte and
                            # the sink will never buffer (or ack) it.
                            drain_acks[link] = drain_acks.get(link, 0) + 1
                        phit = None
                    elif mangled is not phit:
                        monitor.bytes_corrupted += 1
                        phit = mangled
            sink.link_in[into] = LinkSignal(phit=phit, ack=signal.ack)
            if cap.active and link in cap.boundary_out:
                # Cross-cut write: the local assignment above only hit
                # a replica; ship the signal (empty writes included —
                # they clear a previous one) to the sink's owner.
                cap.writes.append((link, phit, signal.ack))

        def idle_check() -> bool:
            # Fast-forward contract: with no phit and no ack offered,
            # the transfer would only overwrite an empty LinkSignal
            # with another empty LinkSignal — a no-op.
            signal = source.link_out[direction]
            return signal.phit is None and not signal.ack

        return transfer, idle_check

    def _apply_drain_acks(self) -> None:
        """Deliver owed spoofed acknowledgements, one per link per cycle.

        Runs after all link transfers.  A spoofed ack is only applied
        when the sender actually has credit debt and no genuine ack
        arrived this cycle — both guards keep the flow-control
        invariant (acks never exceed bytes sent) intact.
        """
        if self._shard_capture.active:
            # Sharded: applied owned-filtered at the boundary barrier
            # instead, after foreign link writes have landed (so the
            # genuine-ack guard sees the converged inputs).
            return
        for link, pending in self._drain_acks.items():
            if pending <= 0:
                continue
            node, direction = link
            router = self.routers[node]
            signal = router.link_in[direction]
            if signal.ack:
                continue  # a genuine ack already occupies this cycle
            if router.output_credit_debt(direction) <= 0:
                continue
            router.link_in[direction] = LinkSignal(phit=signal.phit,
                                                   ack=True)
            self._drain_acks[link] = pending - 1

    def _apply_drain_acks_owned(self, owned: frozenset) -> list:
        """:meth:`_apply_drain_acks` for one shard's owned links only.

        Called by the shard runtime's boundary barrier; returns the
        routers written so the event scheduler requeries them.
        """
        applied = []
        for link, pending in self._drain_acks.items():
            if pending <= 0:
                continue
            node, direction = link
            if node not in owned:
                continue
            router = self.routers[node]
            signal = router.link_in[direction]
            if signal.ack:
                continue
            if router.output_credit_debt(direction) <= 0:
                continue
            router.link_in[direction] = LinkSignal(phit=signal.phit,
                                                   ack=True)
            self._drain_acks[link] = pending - 1
            applied.append(router)
        return applied

    def _drain_ack_sinks(self):
        """Event-scheduler sinks of :meth:`_apply_drain_acks`.

        Every router owed spoofed acks — including one whose pending
        count just reached zero this cycle (entries persist at zero),
        so the router that consumed the final ack is still requeried.
        """
        return [self.routers[node] for node, _ in self._drain_acks]

    def _drain_acks_idle(self) -> bool:
        """Fast-forward contract for :meth:`_apply_drain_acks`.

        A spoofed ack only applies when the owed link's sender has
        outstanding credit debt; debt can only change when that router
        transmits, so while all routers are quiescent this verdict is
        stable across the whole skipped span.

        Sharded, only owned links gate this worker's local bound:
        replica routers' debt and foreign pending counts are another
        worker's business (and may be stale here by design).
        """
        cap = self._shard_capture
        owned = cap.owned if cap.active else None
        for (node, direction), pending in self._drain_acks.items():
            if owned is not None and node not in owned:
                continue
            if pending > 0 and \
                    self.routers[node].output_credit_debt(direction) > 0:
                return False
        return True

    # ------------------------------------------------------------------
    # Link failures and recovery
    # ------------------------------------------------------------------

    def fail_link(self, node: Node, direction: int, *,
                  announce: bool = True) -> None:
        """Cut one unidirectional link (nothing crosses it any more).

        In-flight bytes on the link are lost; a wormhole packet that
        was crossing it stalls, and time-constrained packets already
        scheduled onto the dead output port stay buffered — exactly the
        failure modes that motivate rerouting over disjoint paths.

        With ``announce=True`` (administrative failure) a
        ``link-failed`` event is published for the recovery layer.
        Fault injectors pass ``announce=False`` — a silently cut link
        that only the watchdog can discover.
        """
        link = (node, direction)
        if self.mesh.neighbor(node, direction) is None:
            raise ValueError("no link in that direction")
        if link not in self._failed_links:
            self._failed_links.add(link)
            monitor = self.link_monitors[link]
            monitor.missed_transfers = 0
            monitor.be_lost_uncompensated = 0
        # Announcing an already-failed (silently cut) link is allowed:
        # it upgrades the failure from physical to known.
        if announce and link not in self.routing_avoid:
            self.routing_avoid.add(link)
            self.events.emit(LinkEvent(kind=LINK_FAILED, node=node,
                                       direction=direction,
                                       cycle=self.cycle))

    def repair_link(self, node: Node, direction: int) -> None:
        """Bring a cut link back; publishes a ``link-repaired`` event.

        Credits the sender spent on bytes that died un-drained are
        compensated, otherwise the repaired link would come back
        wedged at zero best-effort credits.
        """
        link = (node, direction)
        if link not in self._failed_links:
            return
        self._failed_links.discard(link)
        self._draining_links.discard(link)
        self.routing_avoid.discard(link)
        monitor = self.link_monitors[link]
        monitor.missed_transfers = 0
        if monitor.be_lost_uncompensated:
            self._drain_acks[link] = (self._drain_acks.get(link, 0)
                                      + monitor.be_lost_uncompensated)
            monitor.be_lost_uncompensated = 0
        self.events.emit(LinkEvent(kind=LINK_REPAIRED, node=node,
                                   direction=direction, cycle=self.cycle))

    def set_link_draining(self, node: Node, direction: int) -> None:
        """Enable drain mode on a failed link (recovery layer).

        Once a link is *known* dead, stalled wormhole traffic heading
        into it is drained: each dying best-effort byte is acknowledged
        back so the worm flows out of the fabric instead of blocking
        its whole path.  Credits already burnt on the dead link are
        compensated up front.
        """
        link = (node, direction)
        if link not in self._failed_links:
            raise ValueError("only failed links can drain")
        if link in self._draining_links:
            return
        self._draining_links.add(link)
        monitor = self.link_monitors[link]
        if monitor.be_lost_uncompensated:
            self._drain_acks[link] = (self._drain_acks.get(link, 0)
                                      + monitor.be_lost_uncompensated)
            monitor.bytes_drained += monitor.be_lost_uncompensated
            monitor.be_lost_uncompensated = 0

    def set_link_corruptor(self, node: Node, direction: int,
                           corruptor: Corruptor) -> None:
        """Install a fault-injection corruptor on one directed link."""
        if self.mesh.neighbor(node, direction) is None:
            raise ValueError("no link in that direction")
        self._link_corruptors[(node, direction)] = corruptor

    def clear_link_corruptor(self, node: Node, direction: int) -> None:
        self._link_corruptors.pop((node, direction), None)

    def link_corruptor(self, node: Node, direction: int) -> Optional[Corruptor]:
        """The corruptor installed on one directed link, or ``None``."""
        return self._link_corruptors.get((node, direction))

    @property
    def failed_links(self) -> set[tuple[Node, int]]:
        return set(self._failed_links)

    def recover_channel(self, channel, *,
                        failed: Optional[set[tuple[Node, int]]] = None,
                        ) -> RealTimeChannel:
        """Reroute a channel (unicast or multicast) around failed links.

        Chooses the shortest surviving path — or, for multicast, a
        shortest-path tree — avoiding ``failed`` (default: all links
        currently known failed), re-runs admission on the detour, and
        re-establishes the channel; returns the replacement handle.
        Raises :class:`~repro.channels.routing.RouteError` with the
        channel's identity when no surviving path exists, and
        :class:`~repro.channels.admission.AdmissionError` when the
        detour fails admission (the old channel is left intact).
        """
        from repro.channels.routing import (
            RouteError,
            multicast_tree_avoiding,
            shortest_route_avoiding,
        )

        avoid = set(self._failed_links if failed is None else failed)
        if len(channel.destinations) > 1:
            try:
                ports_by_node, order = multicast_tree_avoiding(
                    self.mesh.width, self.mesh.height,
                    channel.source, list(channel.destinations),
                    failed=avoid, torus=self.mesh.torus,
                )
            except RouteError as exc:
                raise RouteError(
                    f"cannot recover multicast channel {channel.label!r}: "
                    f"{exc}"
                ) from exc
            return self.manager.reroute_multicast(channel, ports_by_node,
                                                  order)
        try:
            route = shortest_route_avoiding(
                self.mesh.width, self.mesh.height,
                channel.source, channel.destinations[0],
                failed=avoid, torus=self.mesh.torus,
            )
        except RouteError as exc:
            raise RouteError(
                f"cannot recover channel {channel.label!r}: no surviving "
                f"path from {channel.source!r} to "
                f"{channel.destinations[0]!r}"
            ) from exc
        return self.manager.reroute(channel, route)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    @property
    def cycle(self) -> int:
        return self.engine.cycle

    @property
    def current_tick(self) -> int:
        return self.engine.cycle // self.params.slot_cycles

    def run(self, cycles: int) -> int:
        """Advance the whole fabric by ``cycles`` chip cycles."""
        if self._shard is not None:
            return self._shard.run(cycles)
        return self.engine.run(cycles)

    def run_ticks(self, ticks: int) -> int:
        """Advance by whole packet-slot times."""
        return self.run(ticks * self.params.slot_cycles)

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Run until every router is idle (all traffic delivered)."""
        if self._shard is not None:
            # Coordinated: each worker watches its owned routers; the
            # AND-reduce makes the verdict global.
            return self._shard.run_until(self._shard.owned_idle,
                                         max_cycles=max_cycles)
        return self.engine.run_until(
            lambda: all(r.idle for r in self.routers.values()),
            max_cycles=max_cycles,
        )

    # ------------------------------------------------------------------
    # Real-time channels
    # ------------------------------------------------------------------

    def establish_channel(
        self,
        source: Node,
        destination: Node | Sequence[Node],
        spec: TrafficSpec,
        deadline: int,
        **kwargs: object,
    ) -> RealTimeChannel:
        """Establish a real-time channel (see ChannelManager.establish)."""
        is_unicast = (isinstance(destination, tuple)
                      and len(destination) == 2
                      and all(isinstance(c, int) for c in destination))
        if self.mesh.torus and "route" not in kwargs and is_unicast:
            # On a torus the shortest path may cross a wrap link, which
            # dimension-ordered construction never uses; route by BFS.
            from repro.channels.routing import shortest_route_avoiding

            kwargs["route"] = shortest_route_avoiding(
                self.mesh.width, self.mesh.height, source, destination,
                failed=self._failed_links, torus=True,
            )
        return self.manager.establish(source, destination, spec, deadline,
                                      **kwargs)

    def teardown_channel(self, channel: RealTimeChannel) -> None:
        self.manager.teardown(channel)

    def send_message(self, channel: RealTimeChannel, payload: bytes = b"",
                     at_cycle: Optional[int] = None) -> int:
        """Send one message on a channel; returns its logical arrival.

        The message is stamped at the current tick, fragmented into
        packets, and held by the source host until the regulator's
        release tick.  The handle is resolved by label first: automatic
        recovery replaces handles behind the application's back, and a
        channel demoted to best-effort transparently falls back to
        (unguaranteed) wormhole delivery.
        """
        current = self.manager.find(channel.label) or channel
        cycle = self.cycle if at_cycle is None else at_cycle
        now_tick = cycle // self.params.slot_cycles
        if current.degraded:
            return self._send_degraded(current, payload, cycle, now_tick)
        packets, arrival, release = current.make_message(payload, now_tick)
        self.hosts[current.source].queue_tc(packets, release)
        # The host gained self-scheduled work from outside its own step
        # (a controller, a recovery retransmit, another host's source).
        self.engine.wake(self.hosts[current.source])
        if self.tracer is not None:
            for packet in packets:
                self.tracer.emit(
                    cycle, ENQUEUE, meta=packet.meta,
                    node=current.source, traffic_class="TC",
                    info={"release_tick": release,
                          "logical_arrival": arrival},
                )
        for hook in self.tc_send_hooks:
            hook(current, packets, payload)
        return arrival

    def _send_degraded(self, channel: RealTimeChannel, payload: bytes,
                       cycle: int, now_tick: int) -> int:
        """Best-effort fallback delivery for a degraded channel.

        The message keeps its label and a monotone sequence number so
        delivery accounting still works; it is routed (relaying through
        intermediate hosts when needed) around every link software
        knows is dead.  No deadline is attached — the guarantee is
        gone, which is exactly what ``degraded`` means.
        """
        from repro.channels.routing import RouteError

        sequence = channel._sequence
        channel._sequence += 1
        delivered_any = False
        for destination in channel.destinations:
            try:
                self.send_best_effort(
                    channel.source, destination, payload,
                    at_cycle=cycle,
                    avoid=self.routing_avoid,
                    connection_label=channel.label,
                    sequence=sequence,
                )
                delivered_any = True
            except RouteError:
                self.fault_stats.degraded_undeliverable += 1
        if delivered_any:
            self.fault_stats.degraded_messages += 1
        return now_tick

    # ------------------------------------------------------------------
    # Best-effort traffic
    # ------------------------------------------------------------------

    def send_best_effort(self, source: Node, destination: Node,
                         payload: bytes = b"",
                         at_cycle: Optional[int] = None,
                         *,
                         avoid: Optional[set[tuple[Node, int]]] = None,
                         relay: Optional[list[Node]] = None,
                         connection_label: Optional[str] = None,
                         sequence: Optional[int] = None) -> BestEffortPacket:
        """Inject one wormhole packet from ``source`` to ``destination``.

        ``avoid`` plans a host-relay chain around the given links
        (best-effort routing itself is hard-wired dimension order);
        ``relay`` supplies an explicit waypoint chain instead.  Both
        raise :class:`~repro.channels.routing.RouteError` when no
        relay chain survives.
        """
        if not self.mesh.contains(source) or not self.mesh.contains(destination):
            raise ValueError("source or destination outside the mesh")
        if avoid is not None and relay is None and avoid:
            from repro.channels.routing import best_effort_relay

            waypoints = best_effort_relay(
                self.mesh.width, self.mesh.height, source, destination,
                avoid,
            )
            relay = waypoints if len(waypoints) > 1 else None
        first_hop = destination if not relay else relay[0]
        x_offset, y_offset = self.mesh.offsets(source, first_hop)
        packet = BestEffortPacket(
            x_offset=x_offset, y_offset=y_offset, payload=payload,
            meta=PacketMeta(
                source=source, destination=destination,
                connection_label=connection_label, sequence=sequence,
                relay_path=tuple(relay[1:]) if relay else (),
            ),
        )
        cycle = self.cycle if at_cycle is None else at_cycle
        packet.meta.injected_cycle = cycle
        if self._shard is None or self._shard.owns(source):
            # Sharded, only the source's owner injects: packet and
            # meta construction above stay replicated (identical
            # counter draws everywhere), but feeding a replica router
            # that never steps would just accumulate memory.
            self.routers[source].inject_be(packet)
            # Same rationale as in send_message: the injection may come
            # from outside the source router's own host step.
            self.engine.wake(self.routers[source])
        if self.tracer is not None:
            self.tracer.emit(cycle, ENQUEUE, meta=packet.meta,
                             node=source, traffic_class="BE")
        for hook in self.be_send_hooks:
            hook(packet)
        return packet

    # ------------------------------------------------------------------
    # Fault accounting
    # ------------------------------------------------------------------

    def fault_counters(self) -> FaultCounters:
        """Aggregate fault/recovery counters across the whole fabric."""
        counters = FaultCounters(**self.fault_stats.as_dict())
        for router in self.routers.values():
            counters.tc_corrupted += router.tc_corrupt_dropped
            counters.be_corrupted += router.be_corrupt_dropped
            counters.tc_unroutable += router.tc_unroutable_dropped
            counters.tc_resync_drops += router.tc_resync_drops
            counters.be_orphan_drops += router.be_orphan_drops
        for monitor in self.link_monitors.values():
            counters.link_bytes_lost += monitor.bytes_lost
            counters.link_bytes_drained += monitor.bytes_drained
            counters.link_bytes_corrupted += monitor.bytes_corrupted
            counters.link_packets_dropped += monitor.packets_dropped
        return counters

    # ------------------------------------------------------------------
    # Checkpointing (see docs/checkpointing.md)
    # ------------------------------------------------------------------

    def state(self, ctx) -> dict:
        """Complete network state as a JSON-able dict.

        ``ctx`` is a :class:`repro.checkpoint.SaveContext`.  Covers the
        routers, hosts, delivery log, link health, channel software and
        observability registries — everything mutable that the engine's
        per-cycle loop can touch.  Not covered (documented limitations):
        :class:`ServiceTrace` hooks and snapshot emitters.
        """
        corruptors = []
        for (node, direction), corruptor in sorted(
                self._link_corruptors.items()):
            if not hasattr(corruptor, "state"):
                raise ValueError(
                    f"link corruptor on {(node, direction)!r} is not "
                    "checkpointable (no state())"
                )
            corruptors.append([list(node), direction, corruptor.state()])
        return {
            "log": self.log.state(),
            "routers": [self.routers[node].state(ctx)
                        for node in self.mesh.nodes()],
            "hosts": [self.hosts[node].state(ctx)
                      for node in self.mesh.nodes()],
            "link_monitors": [
                [list(node), direction,
                 [monitor.missed_transfers, monitor.bytes_lost,
                  monitor.bytes_drained, monitor.bytes_corrupted,
                  monitor.packets_dropped,
                  monitor.be_lost_uncompensated]]
                for (node, direction), monitor in sorted(
                    self.link_monitors.items())
            ],
            "failed_links": [[list(node), direction] for node, direction
                             in sorted(self._failed_links)],
            "draining_links": [[list(node), direction] for node, direction
                               in sorted(self._draining_links)],
            "routing_avoid": [[list(node), direction] for node, direction
                              in sorted(self.routing_avoid)],
            "drain_acks": [[list(node), direction, pending]
                           for (node, direction), pending in sorted(
                               self._drain_acks.items())],
            "corruptors": corruptors,
            "fault_stats": self.fault_stats.as_dict(),
            "manager": self.manager.state(),
            "admission": self.admission.state(),
            "metrics": self.metrics.state(),
            "tracer": (None if self.tracer is None
                       else self.tracer.state()),
            "packet_ids": packet_id_counter_state(),
            "engine": self.engine.state(),
        }

    def load_state(self, state: dict, ctx) -> None:
        """Overlay checkpointed state onto a freshly-built network.

        The network must have been constructed with the same topology
        and parameters as the checkpointed run (the checkpoint store's
        fingerprint check enforces this), with channels *not* yet
        established — the channel software is restored from the
        checkpoint, not replayed.
        """
        self.log.load_state(state["log"])
        for node, router_state in zip(self.mesh.nodes(),
                                      state["routers"]):
            self.routers[node].load_state(router_state, ctx)
        for node, host_state in zip(self.mesh.nodes(), state["hosts"]):
            self.hosts[node].load_state(host_state, ctx)
        for node, direction, fields in state["link_monitors"]:
            monitor = self.link_monitors[(tuple(node), direction)]
            (monitor.missed_transfers, monitor.bytes_lost,
             monitor.bytes_drained, monitor.bytes_corrupted,
             monitor.packets_dropped,
             monitor.be_lost_uncompensated) = [int(v) for v in fields]
        # These containers are captured by reference inside the wiring
        # closures — refill in place, never rebind.
        self._failed_links.clear()
        self._failed_links.update(
            (tuple(node), direction)
            for node, direction in state["failed_links"])
        self._draining_links.clear()
        self._draining_links.update(
            (tuple(node), direction)
            for node, direction in state["draining_links"])
        self.routing_avoid.clear()
        self.routing_avoid.update(
            (tuple(node), direction)
            for node, direction in state["routing_avoid"])
        self._drain_acks.clear()
        for node, direction, pending in state["drain_acks"]:
            self._drain_acks[(tuple(node), direction)] = int(pending)
        self._link_corruptors.clear()
        if state["corruptors"]:
            from repro.faults.injector import corruptor_from_state

            for node, direction, corruptor_state in state["corruptors"]:
                self._link_corruptors[(tuple(node), direction)] = (
                    corruptor_from_state(corruptor_state)
                )
        for name, value in state["fault_stats"].items():
            setattr(self.fault_stats, name, int(value))
        self.manager.load_state(state["manager"])
        self.admission.load_state(state["admission"])
        self.metrics.load_state(state["metrics"])
        if state["tracer"] is not None:
            self.enable_tracing(capacity=state["tracer"]["capacity"])
            self.tracer.load_state(state["tracer"])
        load_packet_id_counter_state(state["packet_ids"])
        # Last: registrations above reset the engine's backoff state.
        self.engine.load_state(state["engine"])

    # ------------------------------------------------------------------
    # Observability: metrics registry, tracing, snapshots
    # ------------------------------------------------------------------

    def _register_default_metrics(self) -> None:
        """Probe every counter the fabric already keeps.

        The counters stay plain attributes on their owners (their
        existing API, and the zero-overhead hot path, are untouched);
        the registry samples them only when a snapshot is taken.
        """
        metrics = self.metrics
        engine = self.engine
        metrics.register_probe("engine.cycle", lambda: engine.cycle)
        metrics.register_probe("engine.cycles_stepped",
                               lambda: engine.cycles_stepped)
        metrics.register_probe("engine.cycles_fast_forwarded",
                               lambda: engine.cycles_fast_forwarded)

        routers = self.routers

        def summed(attr):
            return lambda: sum(getattr(r, attr) for r in routers.values())

        for attr in ("tc_received", "tc_transmitted", "tc_dropped",
                     "be_worms_routed", "cut_through_count"):
            metrics.register_probe(f"router.{attr}", summed(attr))

        def tree_summed(attr):
            return lambda: sum(getattr(r.tree, attr)
                               for r in routers.values())

        for attr in ("evaluations", "keys_computed", "keys_reused"):
            metrics.register_probe(f"scheduler.{attr}", tree_summed(attr))

        log = self.log
        metrics.register_probe("delivery.tc_delivered",
                               lambda: log.tc_delivered)
        metrics.register_probe("delivery.be_delivered",
                               lambda: log.be_delivered)
        metrics.register_probe("delivery.deadline_misses",
                               lambda: log.deadline_misses)
        metrics.register_probe("delivery.duplicates",
                               lambda: log.duplicate_deliveries)
        log.latency_histograms = {
            "TC": metrics.histogram("delivery.latency_tc_cycles",
                                    DEFAULT_LATENCY_BUCKETS),
            "BE": metrics.histogram("delivery.latency_be_cycles",
                                    DEFAULT_LATENCY_BUCKETS),
        }

        def fault_field(name):
            return lambda: getattr(self.fault_counters(), name)

        for name in FaultCounters().as_dict():
            metrics.register_probe(f"faults.{name}", fault_field(name))

    def enable_tracing(self, capacity: int = 65536) -> PacketTracer:
        """Install a packet-lifecycle tracer on the whole fabric.

        Every router and host starts stamping structured events (see
        :mod:`repro.observability.trace`) into one shared ring buffer
        of ``capacity`` events; returns the tracer.  Idempotent per
        network: re-enabling replaces the previous tracer.
        """
        if self._shard is not None:
            # Buffers in-step emissions for the deterministic
            # cross-worker merge at the cycle barrier.
            tracer = self._shard.make_tracer(capacity)
        else:
            tracer = PacketTracer(capacity)
        self.tracer = tracer
        for router in self.routers.values():
            router.tracer = tracer
        for host in self.hosts.values():
            host.tracer = tracer
        return tracer

    def disable_tracing(self) -> None:
        """Stop tracing; emit sites fall back to the zero-cost guard."""
        self.tracer = None
        for router in self.routers.values():
            router.tracer = None
        for host in self.hosts.values():
            host.tracer = None

    def enable_snapshots(self, period_cycles: int, *,
                         sink=None, keep=None) -> SnapshotEmitter:
        """Record a metrics snapshot every ``period_cycles`` cycles.

        The emitter is registered as an engine component implementing
        the fast-forward contract, so snapshots fire on their exact
        scheduled cycles even across skipped idle spans (like the
        fault watchdog's detections do).
        """
        if self.snapshotter is not None:
            self.engine.remove_component(self.snapshotter)
        emitter = SnapshotEmitter(self.metrics, period_cycles,
                                  start_cycle=self.cycle, sink=sink,
                                  keep=keep)
        self.engine.add_component(emitter)
        self.snapshotter = emitter
        return emitter

    def disable_snapshots(self) -> None:
        if self.snapshotter is not None:
            self.engine.remove_component(self.snapshotter)
            self.snapshotter = None

    # ------------------------------------------------------------------
    # Sources and instrumentation
    # ------------------------------------------------------------------

    def attach_source(self, node: Node, source) -> None:
        """Attach a traffic source (see repro.traffic) to a host."""
        self.hosts[node].attach_source(source)

    def trace_service(self, node: Node, port: int) -> ServiceTrace:
        """Record cumulative per-connection service on one output port."""
        trace = ServiceTrace(watch_port=port)
        router = self.routers[node]
        if router.service_hook is not None:
            previous = router.service_hook

            def chained(cycle: int, p: int, cls: str, meta) -> None:
                previous(cycle, p, cls, meta)
                trace.hook(cycle, p, cls, meta)

            router.service_hook = chained
        else:
            router.service_hook = trace.hook
        self._traces.append(trace)
        return trace


def build_mesh_network(width: int, height: int,
                       params: Optional[RouterParams] = None,
                       **kwargs: object) -> MeshNetwork:
    """Convenience constructor mirroring the paper's 4x4 mesh setup."""
    return MeshNetwork(width, height, params, **kwargs)
