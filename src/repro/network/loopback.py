"""Single-chip loopback harness (paper section 5.2, first experiment).

The paper tests one router chip "in a multi-hop configuration" by
cabling its own links together: +x out feeds -x in and +y out feeds
-y in.  A packet injected toward +x then re-enters on -x, leaves on
+y, re-enters on -y, and finally reaches the reception port — three
router traversals on one chip.  :class:`LoopbackHarness` reproduces
exactly that wiring.
"""

from __future__ import annotations

from typing import Optional

from repro.core.packet import BestEffortPacket, PacketMeta, TimeConstrainedPacket
from repro.core.params import RouterParams
from repro.core.ports import EAST, NORTH, SOUTH, WEST
from repro.core.router import LinkSignal, RealTimeRouter


class LoopbackHarness:
    """One router with +x->-x and +y->-y loopback cables."""

    def __init__(self, params: Optional[RouterParams] = None,
                 **router_kwargs: object) -> None:
        self.params = params or RouterParams()
        self.router = RealTimeRouter(self.params, router_id="loopback",
                                     **router_kwargs)
        self.cycle = 0

    def step(self, cycles: int = 1) -> None:
        for _ in range(cycles):
            self.router.step(self.cycle)
            # Loop the outputs back with the usual one-cycle latency.
            east = self.router.link_out[EAST]
            north = self.router.link_out[NORTH]
            self.router.link_in[WEST] = LinkSignal(phit=east.phit,
                                                   ack=east.ack)
            self.router.link_in[SOUTH] = LinkSignal(phit=north.phit,
                                                    ack=north.ack)
            # Acks generated for bytes drained from the -x / -y inputs
            # travel back over the loop to the +x / +y transmitters.
            west = self.router.link_out[WEST]
            south = self.router.link_out[SOUTH]
            self.router.link_in[EAST] = LinkSignal(phit=west.phit,
                                                   ack=west.ack)
            self.router.link_in[NORTH] = LinkSignal(phit=south.phit,
                                                    ack=south.ack)
            self.cycle += 1

    # ------------------------------------------------------------------

    def send_best_effort(self, size_bytes: int) -> BestEffortPacket:
        """Inject the paper's test worm: one +x hop then one +y hop.

        ``size_bytes`` is the total packet length on the wire (header
        plus payload), matching the paper's "b byte wormhole packet".
        """
        from repro.core.packet import BE_HEADER_BYTES

        if size_bytes <= BE_HEADER_BYTES:
            raise ValueError(
                f"packet must exceed the {BE_HEADER_BYTES}-byte header"
            )
        payload = bytes((i % 251 for i in range(size_bytes - BE_HEADER_BYTES)))
        packet = BestEffortPacket(
            x_offset=1, y_offset=1, payload=payload,
            meta=PacketMeta(injected_cycle=self.cycle),
        )
        self.router.inject_be(packet)
        return packet

    def measure_latency(self, size_bytes: int,
                        max_cycles: int = 100_000) -> int:
        """End-to-end cycles for one ``size_bytes`` worm over the loop."""
        packet = self.send_best_effort(size_bytes)
        start = self.cycle
        while self.cycle - start < max_cycles:
            self.step()
            for delivered in self.router.take_delivered():
                if delivered.meta.packet_id == packet.meta.packet_id:
                    return delivered.meta.delivered_cycle - packet.meta.injected_cycle
        raise TimeoutError("loopback packet was not delivered")
