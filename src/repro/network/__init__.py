"""Mesh multicomputer substrate (the PP-MESS-SIM role in the paper).

:class:`MeshNetwork` wires real-time routers into a 2-D mesh and runs
them cycle by cycle; :class:`LoopbackHarness` reproduces the paper's
single-chip loopback experiment; the stats classes collect the
measurements the evaluation section reports.
"""

from repro.network.engine import SynchronousEngine
from repro.network.loopback import LoopbackHarness
from repro.network.network import MeshNetwork, build_mesh_network
from repro.network.node import HostNode, Send
from repro.network.single_link import LinkConnection, SingleLinkHarness
from repro.network.stats import (
    DeliveryLog,
    DeliveryRecord,
    LatencySummary,
    ServiceTrace,
)
from repro.network.topology import Mesh, reverse_direction

__all__ = [
    "DeliveryLog",
    "DeliveryRecord",
    "HostNode",
    "LatencySummary",
    "LinkConnection",
    "LoopbackHarness",
    "Mesh",
    "MeshNetwork",
    "Send",
    "ServiceTrace",
    "SingleLinkHarness",
    "SynchronousEngine",
    "build_mesh_network",
    "reverse_direction",
]
