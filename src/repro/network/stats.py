"""Measurement collection for network experiments.

Three collectors cover the paper's evaluation needs:

* :class:`DeliveryLog` — per-packet end-to-end records (latency,
  deadline verdicts) for both traffic classes.
* :class:`ServiceTrace` — per-cycle link-service samples, the raw data
  behind Figure 7's cumulative-service curves.
* :class:`LatencySummary` — small-sample summary statistics.

All cycle<->tick conversions use the router's slot time (one tick per
packet transmission time).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.packet import BestEffortPacket, PacketMeta, TimeConstrainedPacket


@dataclass(frozen=True)
class DeliveryRecord:
    """One delivered packet, reduced to the numbers experiments need."""

    traffic_class: str              # "TC" or "BE"
    source: Optional[tuple[int, int]]
    destination: Optional[tuple[int, int]]
    injected_cycle: Optional[int]
    delivered_cycle: int
    connection_label: Optional[str]
    sequence: Optional[int]
    absolute_deadline: Optional[int]    # ticks, TC only
    deadline_met: Optional[bool]        # None for best-effort
    #: Simulation-unique packet id; lets the fault-recovery layer match
    #: deliveries against its retransmit ledger.
    packet_id: Optional[int] = None
    #: Node whose host actually received the packet.  For multicast
    #: this differs per copy, while ``destination`` (from the packet
    #: header) names only one subscriber.
    delivered_node: Optional[tuple[int, int]] = None
    #: True when an earlier record already covered this logical
    #: delivery — the same ``(class, connection, sequence)`` reaching
    #: the same node again, which happens when a retransmitted copy
    #: arrives at a destination the original already reached.
    #: Duplicates stay in :attr:`DeliveryLog.records` for forensics
    #: but are excluded from every delivery count and latency query.
    duplicate: bool = False

    @property
    def latency_cycles(self) -> Optional[int]:
        if self.injected_cycle is None:
            return None
        return self.delivered_cycle - self.injected_cycle


class DeliveryLog:
    """Collects delivered packets and answers deadline/latency queries.

    Retransmission can land two physical copies of one logical packet
    at the same destination (the original was late, not lost).  The
    log detects such duplicates by ``(class, connection, sequence,
    node)`` identity and keeps them out of the delivery counts — a
    retransmitted copy reaching an already-delivered destination must
    not inflate ``tc_delivered`` or charge a second deadline verdict.
    Unlabelled traffic has no cross-copy identity and is never marked.
    """

    def __init__(self, slot_cycles: int) -> None:
        self.slot_cycles = slot_cycles
        self.records: list[DeliveryRecord] = []
        self._seen: set[tuple] = set()
        #: Optional per-class latency histograms (see
        #: :mod:`repro.observability.registry`); wired by MeshNetwork.
        #: Duplicates are not observed.
        self.latency_histograms: dict[str, object] = {}

    def add(self, packet: object,
            delivered_node: Optional[tuple[int, int]] = None,
            ) -> DeliveryRecord:
        meta: Optional[PacketMeta] = getattr(packet, "meta", None)
        if meta is None:
            raise TypeError(f"not a packet: {packet!r}")
        if isinstance(packet, TimeConstrainedPacket):
            traffic_class = "TC"
            deadline_met: Optional[bool] = None
            if meta.absolute_deadline is not None:
                delivered_tick = math.ceil(
                    meta.delivered_cycle / self.slot_cycles
                )
                deadline_met = delivered_tick <= meta.absolute_deadline
        elif isinstance(packet, BestEffortPacket):
            traffic_class = "BE"
            deadline_met = None
        else:
            raise TypeError(f"not a packet: {packet!r}")
        duplicate = False
        # A retransmitted copy carries fresh sequence numbers but
        # remembers the original fragment it re-sends; dedup on that
        # logical identity, not the wire-level sequence.
        identity = (meta.retransmit_of if meta.retransmit_of is not None
                    else meta.sequence)
        if meta.connection_label is not None and identity is not None:
            key = (traffic_class, meta.connection_label, identity,
                   delivered_node)
            duplicate = key in self._seen
            self._seen.add(key)
        record = DeliveryRecord(
            traffic_class=traffic_class,
            source=meta.source,
            destination=meta.destination,
            injected_cycle=meta.injected_cycle,
            delivered_cycle=meta.delivered_cycle,
            connection_label=meta.connection_label,
            sequence=meta.sequence,
            absolute_deadline=meta.absolute_deadline,
            deadline_met=deadline_met,
            packet_id=meta.packet_id,
            delivered_node=delivered_node,
            duplicate=duplicate,
        )
        self.records.append(record)
        if not duplicate and self.latency_histograms:
            latency = record.latency_cycles
            if latency is not None:
                histogram = self.latency_histograms.get(traffic_class)
                if histogram is not None:
                    histogram.observe(latency)
        return record

    # -- checkpointing ------------------------------------------------------

    def state(self) -> dict:
        """Checkpoint state (see ``docs/checkpointing.md``).

        ``_seen`` is serialised explicitly — its identity component
        (``retransmit_of`` or ``sequence``) is not recoverable from the
        records alone.  Latency histograms are shared with the metrics
        registry and restored there.
        """
        return {
            "records": [
                [r.traffic_class,
                 None if r.source is None else list(r.source),
                 None if r.destination is None else list(r.destination),
                 r.injected_cycle, r.delivered_cycle,
                 r.connection_label, r.sequence, r.absolute_deadline,
                 r.deadline_met, r.packet_id,
                 None if r.delivered_node is None
                 else list(r.delivered_node),
                 r.duplicate]
                for r in self.records
            ],
            "seen": [
                [cls, label, identity,
                 None if node is None else list(node)]
                for cls, label, identity, node in sorted(
                    self._seen, key=repr)
            ],
        }

    def load_state(self, state: dict) -> None:
        self.records.clear()
        for (traffic_class, source, destination, injected, delivered,
             label, sequence, deadline, met, packet_id, node,
             duplicate) in state["records"]:
            self.records.append(DeliveryRecord(
                traffic_class=traffic_class,
                source=None if source is None else tuple(source),
                destination=(None if destination is None
                             else tuple(destination)),
                injected_cycle=injected,
                delivered_cycle=delivered,
                connection_label=label,
                sequence=sequence,
                absolute_deadline=deadline,
                deadline_met=met,
                packet_id=packet_id,
                delivered_node=None if node is None else tuple(node),
                duplicate=bool(duplicate),
            ))
        self._seen.clear()
        for cls, label, identity, node in state["seen"]:
            self._seen.add((cls, label, identity,
                            None if node is None else tuple(node)))

    # -- queries ------------------------------------------------------------

    def of_class(self, traffic_class: str) -> list[DeliveryRecord]:
        return [r for r in self.records
                if r.traffic_class == traffic_class and not r.duplicate]

    def of_connection(self, label: str) -> list[DeliveryRecord]:
        return [r for r in self.records
                if r.connection_label == label and not r.duplicate]

    @property
    def deadline_misses(self) -> int:
        return sum(1 for r in self.records
                   if r.deadline_met is False and not r.duplicate)

    @property
    def duplicate_deliveries(self) -> int:
        """Physical copies that re-delivered an already-counted packet."""
        return sum(1 for r in self.records if r.duplicate)

    @property
    def tc_delivered(self) -> int:
        return len(self.of_class("TC"))

    @property
    def be_delivered(self) -> int:
        return len(self.of_class("BE"))

    def messages(self, label: str,
                 packets_per_message: int) -> list["MessageRecord"]:
        """Reassemble a connection's packets into application messages.

        Fragments of one message carry consecutive sequence numbers
        (assigned by :meth:`RealTimeChannel.make_message`); a message is
        complete when all of its fragments arrived, and its delivery
        time is the last fragment's.
        """
        if packets_per_message < 1:
            raise ValueError("packets_per_message must be positive")
        fragments: dict[int, list[DeliveryRecord]] = {}
        for record in self.of_connection(label):
            if record.sequence is None:
                continue
            fragments.setdefault(
                record.sequence // packets_per_message, []
            ).append(record)
        messages = []
        for index in sorted(fragments):
            parts = fragments[index]
            complete = len(parts) == packets_per_message
            messages.append(MessageRecord(
                message_index=index,
                fragments=len(parts),
                expected_fragments=packets_per_message,
                complete=complete,
                delivered_cycle=max(p.delivered_cycle for p in parts),
                deadline_met=all(p.deadline_met is not False
                                 for p in parts),
            ))
        return messages

    def latency_summary(self, traffic_class: str) -> "LatencySummary":
        latencies = [r.latency_cycles for r in self.of_class(traffic_class)
                     if r.latency_cycles is not None]
        return LatencySummary.from_values(latencies)

    def class_stats(self, traffic_class: str) -> dict:
        """Canonical JSON-ready per-class delivery stats.

        The shape campaign result shards store per traffic class:
        delivery count, deadline misses and the latency summary.
        Duplicates are excluded, like every other query.
        """
        records = self.of_class(traffic_class)
        return {
            "delivered": len(records),
            "deadline_misses": sum(1 for r in records
                                   if r.deadline_met is False),
            "latency": self.latency_summary(traffic_class).as_dict(),
        }


@dataclass
class FaultCounters:
    """Per-class fault and recovery accounting for one network.

    Aggregated by :meth:`MeshNetwork.fault_counters` from the routers
    (corruption/framing drops), the link monitors (bytes lost on dead
    links) and the fault-tolerance layer (detections, reroutes,
    retransmissions, degradations).  Deterministic for a given seed and
    plan, so two same-seed chaos runs must produce identical counters.
    """

    # Detection (router input/reception checks).
    tc_corrupted: int = 0          # TC packets dropped on checksum mismatch
    be_corrupted: int = 0          # BE packets dropped on checksum mismatch
    tc_unroutable: int = 0         # TC packets with no table entry (dropped)
    tc_resync_drops: int = 0       # partial TC frames discarded (resync)
    be_orphan_drops: int = 0       # headless/truncated worms discarded
    # Link-level losses (monitors in the wiring layer).
    link_bytes_lost: int = 0       # bytes that died on failed links
    link_bytes_drained: int = 0    # stalled wormhole bytes drained away
    link_bytes_corrupted: int = 0  # bytes flipped by injected corruption
    link_packets_dropped: int = 0  # whole packets suppressed by injection
    # Recovery actions.
    links_detected: int = 0        # watchdog link-death declarations
    channels_rerouted: int = 0     # successful automatic reroutes
    channels_degraded: int = 0     # channels demoted to best-effort
    tc_retransmitted: int = 0      # TC packets re-sent from the source
    retransmit_recovered: int = 0  # retransmissions eventually delivered
    retransmit_abandoned: int = 0  # gave up after max backoff attempts
    be_retried: int = 0            # best-effort packets re-sent end-to-end
    be_packets_lost: int = 0       # BE packets judged lost on a dead link
    degraded_messages: int = 0     # messages sent best-effort post-demotion
    degraded_undeliverable: int = 0  # degraded sends with no surviving path

    def __add__(self, other: "FaultCounters") -> "FaultCounters":
        merged = FaultCounters()
        for name in vars(merged):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


@dataclass(frozen=True)
class MessageRecord:
    """One reassembled application message."""

    message_index: int
    fragments: int
    expected_fragments: int
    complete: bool
    delivered_cycle: int
    deadline_met: bool


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample (cycles)."""

    count: int
    mean: float
    maximum: int
    minimum: int
    p99: float

    def as_dict(self) -> dict:
        """JSON-ready form (campaign result shards, snapshots)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "maximum": self.maximum,
            "minimum": self.minimum,
            "p99": self.p99,
        }

    @classmethod
    def from_values(cls, values: Iterable[int]) -> "LatencySummary":
        data = sorted(values)
        if not data:
            return cls(count=0, mean=0.0, maximum=0, minimum=0, p99=0.0)
        index = min(len(data) - 1, math.ceil(0.99 * len(data)) - 1)
        return cls(
            count=len(data),
            mean=sum(data) / len(data),
            maximum=data[-1],
            minimum=data[0],
            p99=float(data[index]),
        )


class ServiceTrace:
    """Cumulative per-connection link service (Figure 7's raw data).

    Install as a router ``service_hook``; each transmitted byte on the
    watched output port is attributed to its connection label (or the
    best-effort aggregate) and accumulated into a step series.
    """

    def __init__(self, watch_port: Optional[int] = None) -> None:
        self.watch_port = watch_port
        self.totals: dict[str, int] = defaultdict(int)
        self.series: dict[str, list[tuple[int, int]]] = defaultdict(list)

    def hook(self, cycle: int, port: int, traffic_class: str,
             meta: Optional[PacketMeta]) -> None:
        if self.watch_port is not None and port != self.watch_port:
            return
        if traffic_class == "BE":
            label = "best-effort"
        elif meta is not None and meta.connection_label is not None:
            label = meta.connection_label
        else:
            label = "time-constrained"
        self.totals[label] += 1
        self.series[label].append((cycle, self.totals[label]))

    def cumulative_at(self, label: str, cycle: int) -> int:
        """Bytes of service a label had received by ``cycle``."""
        best = 0
        for when, total in self.series.get(label, ()):
            if when > cycle:
                break
            best = total
        return best

    def labels(self) -> list[str]:
        return sorted(self.totals)
