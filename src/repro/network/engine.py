"""Synchronous cycle engine.

Everything in the fabric advances in lock step, one 20 ns cycle at a
time: components (routers, hosts) run their ``step``, then wiring
functions copy each router's output signals to its neighbour's inputs
for the next cycle — giving every link a one-cycle latency, like the
registered chip-to-chip links of the original hardware.
"""

from __future__ import annotations

from typing import Callable, Protocol


class Steppable(Protocol):
    def step(self, cycle: int) -> None: ...


class SynchronousEngine:
    """Steps components and applies wiring once per cycle."""

    def __init__(self) -> None:
        self._components: list[Steppable] = []
        self._wiring: list[Callable[[], None]] = []
        self.cycle = 0

    def add_component(self, component: Steppable) -> None:
        self._components.append(component)

    def remove_component(self, component: Steppable) -> None:
        """Detach a component (fault injectors, watchdogs, controllers).

        The component simply stops being stepped; raises ValueError if
        it was never registered, so detach bugs surface immediately.
        """
        try:
            self._components.remove(component)
        except ValueError:
            raise ValueError(
                f"component {component!r} is not registered with this engine"
            ) from None

    def add_wiring(self, transfer: Callable[[], None]) -> None:
        """Register a post-step signal copy (runs every cycle)."""
        self._wiring.append(transfer)

    def run(self, cycles: int) -> int:
        """Advance the fabric ``cycles`` cycles; returns the new time."""
        if cycles < 0:
            raise ValueError("cannot run a negative number of cycles")
        for _ in range(cycles):
            for component in self._components:
                component.step(self.cycle)
            for transfer in self._wiring:
                transfer()
            self.cycle += 1
        return self.cycle

    def run_until(self, predicate: Callable[[], bool],
                  max_cycles: int = 1_000_000) -> int:
        """Run until ``predicate()`` holds; raises on timeout."""
        start = self.cycle
        while not predicate():
            if self.cycle - start >= max_cycles:
                raise TimeoutError(
                    f"condition not reached within {max_cycles} cycles"
                )
            self.run(1)
        return self.cycle
