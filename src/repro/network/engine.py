"""Synchronous cycle engine with quiescence fast-forward and an
event-driven scheduling mode.

Everything in the fabric advances in lock step, one 20 ns cycle at a
time: components (routers, hosts) run their ``step``, then wiring
functions copy each router's output signals to its neighbour's inputs
for the next cycle — giving every link a one-cycle latency, like the
registered chip-to-chip links of the original hardware.

Large fabrics are mostly idle, so stepping every component and wiring
lambda on every cycle wastes almost all of the interpreter time on
provably-empty work.  Two optimised execution modes exist, both
producing byte-identical simulations (``tests/integration/
test_fast_forward_equivalence.py`` and ``tests/integration/
test_event_engine_equivalence.py`` assert this; ``docs/performance.md``
documents the contracts):

* **exact** (the default) — the per-cycle loop with *fast-forward*:
  when every component reports (via ``next_event_cycle``) that it has
  no work before some future cycle, and every wiring function reports
  (via its ``idle_check``) that running it would be a no-op, the clock
  jumps directly to the earliest future event instead of looping.  The
  whole fabric must be quiescent for a jump, so a single busy router
  pins everything to the per-cycle loop.

* **event** — a true discrete-event core: a priority queue of
  ``(cycle, registration order, component)`` entries, fed by the same
  ``next_event_cycle`` contracts, advances the clock directly to the
  next cycle on which *any* component has work and steps only the
  components scheduled there — including under load, where only the
  active corner of the mesh runs while the rest is skipped entirely.
  Components scheduled on the same cycle fire in registration order
  (the order ``add_component`` was called), which is also the exact
  mode's step order, so the two modes are step-for-step identical.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Iterable, Optional, Protocol

#: Engine execution modes (see module docstring).
ENGINE_MODES = ("exact", "event")


class Steppable(Protocol):
    def step(self, cycle: int) -> None: ...


class SynchronousEngine:
    """Cycle engine with two byte-identical schedulers (exact/event).

    With ``fast_forward`` enabled (the default) the exact engine skips
    spans of provably idle cycles in one jump.  Fast-forward only
    engages when *every* registered component implements
    ``next_event_cycle`` and *every* wiring function was registered
    with an ``idle_check``; a single legacy component pins the engine
    to the per-cycle loop, so existing harnesses keep their exact
    semantics.

    With ``mode="event"`` the engine runs the discrete-event scheduler
    instead: only components whose ``next_event_cycle`` is due are
    stepped, and only wiring whose declared ``source`` component
    stepped this cycle (plus source-less wiring) runs.  A component
    without ``next_event_cycle`` is treated as due on every cycle, so
    legacy components stay exact (at per-cycle cost).  The scheduler
    queue is transient: it is rebuilt from component state at every
    ``run``/``run_until`` entry, so checkpoint restore and arbitrary
    between-run mutations need no queue serialisation.
    """

    def __init__(self, *, fast_forward: bool = True,
                 mode: str = "exact") -> None:
        if mode not in ENGINE_MODES:
            raise ValueError(
                f"engine mode must be one of {ENGINE_MODES}, not {mode!r}"
            )
        self.mode = mode
        self._components: list[Steppable] = []
        self._wiring: list[Callable[[], None]] = []
        self._wiring_idle_checks: list[Optional[Callable[[], bool]]] = []
        self.cycle = 0
        #: Master switch for the idle-span fast path of the exact mode.
        #: Clearing it (or constructing with ``fast_forward=False``)
        #: forces the legacy per-cycle loop — the reference behaviour
        #: benchmarks and the equivalence tests compare against.  The
        #: event mode always skips idle cycles and ignores this flag.
        self.fast_forward = fast_forward
        #: Cycles that ran the full step-components-then-wire loop.
        self.cycles_stepped = 0
        #: Cycles skipped (no component stepped): fast-forward jumps in
        #: exact mode, scheduler jumps in event mode.
        self.cycles_fast_forwarded = 0
        self._ff_capable = True
        # Failed-jump backoff (exact mode): scanning every component
        # each cycle to discover "someone is busy" costs more than the
        # step itself, so after a failed attempt the engine waits
        # exponentially longer (capped) before scanning again.  At
        # worst the start of an idle span is detected
        # ``_FF_BACKOFF_CAP`` cycles late — negligible against the
        # spans worth skipping.
        self._ff_retry_cycle = 0
        self._ff_backoff = 1
        # -- event-mode scheduler (all transient; rebuilt at run entry)
        #: component -> registration index (the same-cycle firing order).
        self._order: dict = {}
        self._order_counter = 0
        #: Components registered without ``local=True``: their
        #: ``next_event_cycle`` may depend on *global* state (watchdogs
        #: scanning link monitors, recovery controllers watching the
        #: delivery log), so they are requeried after every executed
        #: cycle — and a step by one of them triggers a full requery.
        self._watchers: set = set()
        #: component -> components to requery whenever it steps
        #: (host <-> router pairs: one injects into / drains the other).
        self._peers: dict = {}
        #: Per wiring: the declared source component (or None).
        self._wiring_sources: list = []
        #: Per wiring: declared sink components — a sequence, a callable
        #: returning one, or None.
        self._wiring_sinks: list = []
        #: source component -> indices of the wirings it drives.
        self._source_wirings: dict = {}
        #: Indices of wirings with no declared source (always run).
        self._sourceless_wirings: list[int] = []
        #: component -> currently valid scheduled cycle (lazy deletion:
        #: a popped heap entry is live only if it matches this map).
        self._sched: dict = {}
        self._heap: list = []
        self._push_seq = 0
        self._pending_wakes: set = set()
        #: Components registered but deliberately never stepped (shard
        #: replicas of routers owned by another worker; see
        #: ``repro.shard``).  They keep their registration index — so
        #: firing order stays identical across workers — but the
        #: scheduler never queries or steps them.
        self._inert: set = set()
        #: Registration index of the component currently inside
        #: ``step`` during ``_event_step_once`` (None outside component
        #: steps).  Shard runtimes use it to tag trace emissions with
        #: their origin for deterministic cross-worker merging.
        self.stepping_order: Optional[int] = None
        #: Optional hook run after the wiring loop of every executed
        #: event-mode cycle, before the clock increments.  Receives the
        #: executed cycle; may return an iterable of components to
        #: requery (components it delivered inputs to).  Shard runtimes
        #: use it as the boundary-exchange barrier.
        self.post_wiring_hook: Optional[Callable] = None

    _FF_BACKOFF_CAP = 64

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def add_component(self, component: Steppable, *,
                      local: bool = False) -> None:
        """Register a component; it steps each cycle in this order.

        ``local=True`` declares that the component's
        ``next_event_cycle`` depends only on its *own* state plus
        inputs delivered to it by wiring, peers (:meth:`bind_peers`)
        and explicit :meth:`wake` calls — the event scheduler then
        requeries it only on those occasions.  The default (a
        *watcher*) is requeried after every executed cycle and safe
        for components that observe arbitrary global state.
        """
        self._components.append(component)
        self._order[component] = self._order_counter
        self._order_counter += 1
        if not local:
            self._watchers.add(component)
        self._refresh_ff_capability()

    def bind_peers(self, first: Steppable, second: Steppable) -> None:
        """Declare two local components as mutual wake partners.

        Whenever one of them steps, the event scheduler requeries the
        other — the contract for pairs that feed each other directly
        (a host injecting into its router; a router delivering to its
        host) without going through a declared wiring.
        """
        self._peers.setdefault(first, []).append(second)
        self._peers.setdefault(second, []).append(first)

    def remove_component(self, component: Steppable) -> None:
        """Detach a component (fault injectors, watchdogs, controllers).

        The component simply stops being stepped; raises ValueError if
        it was never registered, so detach bugs surface immediately.

        Safe to call from inside a component's own ``step``: the engine
        steps a snapshot of the component list each cycle, so a removal
        mid-cycle never skips or double-steps a neighbour — it takes
        effect at the next cycle boundary (and the removed component
        still finishes the current cycle if it had not stepped yet).
        A component re-added later gets a fresh (higher) registration
        index — it fires after everything registered before it.
        """
        try:
            self._components.remove(component)
        except ValueError:
            raise ValueError(
                f"component {component!r} is not registered with this engine"
            ) from None
        self._order.pop(component, None)
        self._watchers.discard(component)
        self._sched.pop(component, None)
        self._pending_wakes.discard(component)
        self._inert.discard(component)
        if self._heap:
            # Purge queued heap entries outright.  Lazy deletion (the
            # ``_sched`` match) is not enough here: a component removed
            # and later re-added gets a fresh registration index, and a
            # surviving stale entry carrying the *old* index could
            # match the re-added component's ``_sched`` cycle and fire
            # it at its old position in the order.
            self._heap = [entry for entry in self._heap
                          if entry[3] is not component]
            heapq.heapify(self._heap)
        for partner in self._peers.pop(component, ()):
            partners = self._peers.get(partner)
            if partners and component in partners:
                partners.remove(component)
        if component in self._source_wirings:
            # Wiring whose source vanished falls back to source-less
            # semantics: run every executed cycle, gate jumps on its
            # idle_check (or pin per-cycle execution without one).
            for index in self._source_wirings.pop(component):
                self._wiring_sources[index] = None
                self._sourceless_wirings.append(index)
            self._sourceless_wirings.sort()
        self._refresh_ff_capability()

    def add_wiring(
        self,
        transfer: Callable[[], None],
        *,
        idle_check: Optional[Callable[[], bool]] = None,
        source: Optional[Steppable] = None,
        sinks: object = None,
    ) -> None:
        """Register a post-step signal copy (runs every stepped cycle).

        ``idle_check`` is the fast-forward contract for wiring: it must
        return True exactly when calling ``transfer`` right now would
        leave all simulation state unchanged (no signal to copy, no
        pending side effect).  Wiring registered without one is treated
        as always-active and disables fast-forward for the exact engine
        (and pins the event engine to per-cycle execution).

        ``source`` is the event-mode locality contract: it declares
        that ``transfer`` is a provable no-op on any cycle the source
        component did not step (a router that did not step has empty
        link outputs).  The event scheduler then runs the wiring only
        on cycles its source stepped.  Wiring without a source runs on
        every executed cycle.

        ``sinks`` names the components whose inputs ``transfer`` can
        write (a sequence, or a callable returning one for dynamic
        sets); they are requeried after every cycle the wiring ran, so
        a delivered signal schedules its consumer for the next cycle.
        """
        self._wiring.append(transfer)
        self._wiring_idle_checks.append(idle_check)
        index = len(self._wiring) - 1
        self._wiring_sources.append(source)
        self._wiring_sinks.append(sinks)
        if source is None:
            self._sourceless_wirings.append(index)
        else:
            self._source_wirings.setdefault(source, []).append(index)
        self._refresh_ff_capability()

    def wake(self, component: Steppable) -> None:
        """Ask the event scheduler to requery a component.

        Call after mutating a component from *outside* its own step —
        queueing packets on a host, injecting into a router — so its
        ``next_event_cycle`` is re-read at the next cycle boundary.
        Cheap and idempotent; a no-op in exact mode and for
        unregistered components.
        """
        self._pending_wakes.add(component)

    def set_inert(self, component: Steppable, inert: bool = True) -> None:
        """Mark a registered component as never-stepped (or unmark it).

        An inert component keeps its registration index — so the
        firing order of everything else is unchanged — but the engine
        neither steps nor queries it.  Shard workers mark the routers
        owned by other workers inert: their state is maintained by the
        boundary exchange instead of local stepping.
        """
        if component not in self._order:
            raise ValueError(
                f"component {component!r} is not registered with this engine"
            )
        if inert:
            self._inert.add(component)
            self._sched.pop(component, None)
        else:
            self._inert.discard(component)

    def schedule_at(self, component: Steppable, when: int) -> None:
        """Force a component onto the event queue for cycle ``when``.

        Used by shard runtimes to pin their barrier component to the
        window bound; over-scheduling is safe by the step contract.
        """
        if component not in self._order:
            raise ValueError(
                f"component {component!r} is not registered with this engine"
            )
        if self._sched.get(component) == when:
            return
        self._sched[component] = when
        self._push_seq += 1
        heapq.heappush(self._heap,
                       (when, self._order[component], self._push_seq,
                        component))

    def event_bound(self) -> Optional[int]:
        """This worker's local event horizon (event mode only).

        Returns the current cycle when something is due right now (a
        scheduled component or active source-less wiring), the earliest
        scheduled future cycle otherwise, or ``None`` when nothing is
        scheduled at all.  Shard runtimes all-reduce this across
        workers to find the next globally executed cycle.
        """
        due = self._event_next_due()
        if due is not None and due <= self.cycle:
            return self.cycle
        if not self._event_wirings_idle():
            return self.cycle
        return due

    def _refresh_ff_capability(self) -> None:
        self._ff_capable = (
            all(hasattr(c, "next_event_cycle") for c in self._components)
            and all(check is not None for check in self._wiring_idle_checks)
        )
        # A registration change can create a newly-idle configuration;
        # forget any backoff so the next cycle re-evaluates fresh.
        self._ff_retry_cycle = 0
        self._ff_backoff = 1

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state(self) -> dict:
        """Checkpoint state (see ``docs/checkpointing.md``).

        The event scheduler's queue is deliberately absent: it is a
        pure function of component state and is rebuilt from
        ``next_event_cycle`` at every run entry, so a restored session
        re-seeds it for free.
        """
        return {
            "cycle": self.cycle,
            "cycles_stepped": self.cycles_stepped,
            "cycles_fast_forwarded": self.cycles_fast_forwarded,
            "ff_retry_cycle": self._ff_retry_cycle,
            "ff_backoff": self._ff_backoff,
        }

    def load_state(self, state: dict) -> None:
        """Overlay checkpointed engine state.

        Must run *after* every component and wiring registration —
        registering resets the fast-forward backoff, which this
        restores to its checkpointed value.
        """
        self.cycle = int(state["cycle"])
        self.cycles_stepped = int(state["cycles_stepped"])
        self.cycles_fast_forwarded = int(state["cycles_fast_forwarded"])
        self._ff_retry_cycle = int(state["ff_retry_cycle"])
        self._ff_backoff = int(state["ff_backoff"])

    # ------------------------------------------------------------------
    # The per-cycle loop and the exact-mode fast path
    # ------------------------------------------------------------------

    def _step_once(self) -> None:
        # Snapshot so add/remove_component from inside a step cannot
        # skip or double-step a neighbour (mutation during iteration).
        inert = self._inert
        for component in tuple(self._components):
            if inert and component in inert:
                continue
            component.step(self.cycle)
        for transfer in self._wiring:
            transfer()
        self.cycle += 1
        self.cycles_stepped += 1

    def _next_event_bound(self) -> Optional[float]:
        """Earliest future cycle at which anything can happen.

        Returns ``None`` when some component or wiring has work *now*
        (the engine must run the normal per-cycle loop), a cycle number
        when every component is quiescent until then, or ``math.inf``
        when the whole fabric is quiescent with no scheduled events at
        all — pure time passage.
        """
        bound: Optional[float] = None
        inert = self._inert
        for component in self._components:
            if inert and component in inert:
                continue
            nxt = component.next_event_cycle(self.cycle)
            if nxt is None:
                continue
            if nxt <= self.cycle:
                return None
            if bound is None or nxt < bound:
                bound = nxt
        for check in self._wiring_idle_checks:
            if not check():
                return None
        return bound if bound is not None else math.inf

    def _try_fast_forward(self, limit: int) -> bool:
        """Jump to the next event (capped at ``limit``) if provably idle."""
        if not (self.fast_forward and self._ff_capable):
            return False
        if self.cycle < self._ff_retry_cycle:
            return False
        bound = self._next_event_bound()
        if bound is None or bound <= self.cycle:
            self._ff_retry_cycle = self.cycle + self._ff_backoff
            self._ff_backoff = min(self._ff_backoff * 2,
                                   self._FF_BACKOFF_CAP)
            return False
        jump = int(min(bound, limit))
        if jump <= self.cycle:
            return False
        self._ff_backoff = 1
        self._ff_retry_cycle = 0
        self.cycles_fast_forwarded += jump - self.cycle
        self.cycle = jump
        return True

    # ------------------------------------------------------------------
    # The event-driven scheduler
    # ------------------------------------------------------------------

    def _event_requery(self, component, now: int) -> None:
        """Re-read one component's ``next_event_cycle`` and (re)schedule.

        ``None`` unschedules; an answer at or before ``now`` schedules
        for ``now``.  Over-scheduling is always safe (stepping a
        quiescent component is a no-op by the contract), so staleness
        handling only ever errs toward extra steps, never missed ones.
        """
        if component not in self._order:
            return  # removed since the wake/sink reference was taken
        if component in self._inert:
            return  # maintained by the shard boundary exchange
        probe = getattr(component, "next_event_cycle", None)
        nxt = probe(now) if probe is not None else now
        if nxt is None:
            self._sched.pop(component, None)
            return
        when = nxt if nxt > now else now
        if self._sched.get(component) == when:
            return  # already queued for that cycle
        self._sched[component] = when
        self._push_seq += 1
        heapq.heappush(self._heap,
                       (when, self._order[component], self._push_seq,
                        component))

    def _event_full_requery(self) -> None:
        """Rebuild the queue from scratch (run entry; watcher stepped)."""
        self._heap.clear()
        self._sched.clear()
        self._pending_wakes.clear()
        now = self.cycle
        for component in self._components:
            self._event_requery(component, now)

    def _event_next_due(self) -> Optional[int]:
        """Earliest scheduled cycle, discarding stale heap entries."""
        heap = self._heap
        while heap:
            when, _, _, component = heap[0]
            if self._sched.get(component) == when:
                return when
            heapq.heappop(heap)
        return None

    def _event_wirings_idle(self) -> bool:
        """May the scheduler jump past source-less wiring right now?

        Wiring with a declared source is covered by its source's
        schedule; source-less wiring must be gated on its
        ``idle_check`` — and without one it pins per-cycle execution.
        """
        for index in self._sourceless_wirings:
            check = self._wiring_idle_checks[index]
            if check is None or not check():
                return False
        return True

    def _event_step_once(self) -> None:
        """Execute one cycle: due components, their wiring, requeries."""
        now = self.cycle
        heap = self._heap
        batch: list = []  # (order, component) min-heap: firing order
        batched: set = set()
        while heap and heap[0][0] <= now:
            when, order, _, component = heapq.heappop(heap)
            if self._sched.get(component) != when:
                continue  # superseded by a later requery
            del self._sched[component]
            if component not in batched:
                batched.add(component)
                heapq.heappush(batch, (order, component))
        stepped: list = []
        while batch:
            order, component = heapq.heappop(batch)
            self.stepping_order = order
            component.step(now)
            self.stepping_order = None
            stepped.append(component)
            # In-cycle cascade: a step can hand work directly to a
            # peer *later* in the firing order (a host injecting into
            # its router), which the exact engine — where everything
            # steps every executed cycle — processes this same cycle.
            # Peers earlier in the order have already had their exact
            # firing slot; they are requeried for the next cycle below.
            for partner in self._peers.get(component, ()):
                if (partner in batched or partner not in self._order
                        or partner in self._inert):
                    continue
                partner_order = self._order[partner]
                if partner_order <= order:
                    continue
                probe = getattr(partner, "next_event_cycle", None)
                nxt = probe(now) if probe is not None else now
                if nxt is not None and nxt <= now:
                    batched.add(partner)
                    heapq.heappush(batch, (partner_order, partner))
        run_indices = list(self._sourceless_wirings)
        for component in stepped:
            indices = self._source_wirings.get(component)
            if indices:
                run_indices.extend(indices)
        run_indices.sort()  # wiring order == registration order
        wiring = self._wiring
        for index in run_indices:
            wiring[index]()
        hook = self.post_wiring_hook
        hooked = hook(now) if hook is not None else ()
        self.cycle += 1
        self.cycles_stepped += 1
        # Requery everything this cycle could have affected.  A watcher
        # step may mutate arbitrary components (fault injection,
        # retransmission), so it escalates to a full rebuild.
        if any(component in self._watchers for component in stepped):
            self._event_full_requery()
            return
        now = self.cycle
        requery = set(stepped)
        if hooked:
            requery.update(hooked)
        for component in stepped:
            requery.update(self._peers.get(component, ()))
        for index in run_indices:
            sinks = self._wiring_sinks[index]
            if sinks is None:
                continue
            requery.update(sinks() if callable(sinks) else sinks)
        requery.update(self._pending_wakes)
        self._pending_wakes.clear()
        for component in requery:
            self._event_requery(component, now)
        for component in self._watchers:
            self._event_requery(component, now)

    def _event_advance(self, limit: int) -> bool:
        """Jump to the next scheduled event (capped at ``limit``).

        Returns True if the clock moved; False means something is due
        right now and the caller must execute the current cycle.
        """
        due = self._event_next_due()
        if due is not None and due <= self.cycle:
            return False
        if not self._event_wirings_idle():
            return False
        jump = limit if due is None else min(due, limit)
        if jump <= self.cycle:
            return False
        self.cycles_fast_forwarded += jump - self.cycle
        self.cycle = jump
        return True

    def _event_run(self, target: int) -> None:
        self._event_full_requery()
        while self.cycle < target:
            if self._event_advance(target):
                continue
            self._event_step_once()

    def _event_run_until(self, predicate: Callable[[], bool],
                         deadline: int, max_cycles: int) -> int:
        self._event_full_requery()
        while True:
            if self.cycle >= deadline:
                raise TimeoutError(
                    f"condition not reached within {max_cycles} cycles"
                )
            if self._event_advance(deadline):
                if predicate():
                    return self.cycle
                continue
            self._event_step_once()
            if predicate():
                return self.cycle

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, cycles: int) -> int:
        """Advance the fabric ``cycles`` cycles; returns the new time."""
        if cycles < 0:
            raise ValueError("cannot run a negative number of cycles")
        target = self.cycle + cycles
        if self.mode == "event":
            self._event_run(target)
            return self.cycle
        while self.cycle < target:
            if self._try_fast_forward(target):
                continue
            self._step_once()
        return self.cycle

    def run_until(self, predicate: Callable[[], bool],
                  max_cycles: int = 1_000_000) -> int:
        """Run until ``predicate()`` holds; raises on timeout.

        Evaluation contract — identical in both engine modes: the
        predicate is evaluated once *before* any stepping (so a
        condition that already holds returns immediately, advancing
        zero cycles) and then *after* every executed cycle — i.e.
        post-step, with that cycle's component work and wiring applied
        and ``self.cycle`` already incremented.  The returned cycle is
        therefore the first cycle count at which the predicate was
        observed true.

        Across a skipped span (a fast-forward jump in exact mode, a
        scheduler jump in event mode) the predicate is evaluated at the
        span's end only.  Component state is constant over such a span,
        so any predicate that is a function of component/network state
        sees no difference; a predicate that reads the raw cycle count
        (e.g. ``lambda: engine.cycle >= n``) may be observed late — use
        :meth:`run` for fixed-duration waits instead.

        ``max_cycles`` bounds the *actual cycles advanced* (stepped
        plus skipped) before :class:`TimeoutError` is raised — again
        identically in both modes.
        """
        if max_cycles < 0:
            raise ValueError("max_cycles must be non-negative")
        if predicate():
            return self.cycle
        deadline = self.cycle + max_cycles
        if self.mode == "event":
            return self._event_run_until(predicate, deadline, max_cycles)
        while True:
            if self.cycle >= deadline:
                raise TimeoutError(
                    f"condition not reached within {max_cycles} cycles"
                )
            if self._try_fast_forward(deadline):
                if predicate():
                    return self.cycle
                continue
            self._step_once()
            if predicate():
                return self.cycle
