"""Synchronous cycle engine with a quiescence-aware fast path.

Everything in the fabric advances in lock step, one 20 ns cycle at a
time: components (routers, hosts) run their ``step``, then wiring
functions copy each router's output signals to its neighbour's inputs
for the next cycle — giving every link a one-cycle latency, like the
registered chip-to-chip links of the original hardware.

Large fabrics are mostly idle, so stepping every component and wiring
lambda on every cycle wastes almost all of the interpreter time on
provably-empty work.  The engine therefore supports *fast-forward*:
when every component reports (via ``next_event_cycle``) that it has no
work before some future cycle, and every wiring function reports (via
its ``idle_check``) that running it would be a no-op, the clock jumps
directly to the earliest future event instead of looping.  The skipped
cycles are exactly the cycles on which the per-cycle loop would have
changed nothing, so the two execution modes produce byte-identical
simulations (``tests/integration/test_fast_forward_equivalence.py``
asserts this; ``docs/performance.md`` documents the contract).
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Protocol


class Steppable(Protocol):
    def step(self, cycle: int) -> None: ...


class SynchronousEngine:
    """Steps components and applies wiring once per cycle.

    With ``fast_forward`` enabled (the default) the engine skips spans
    of provably idle cycles in one jump.  Fast-forward only engages
    when *every* registered component implements ``next_event_cycle``
    and *every* wiring function was registered with an ``idle_check``;
    a single legacy component pins the engine to the per-cycle loop, so
    existing harnesses keep their exact semantics.
    """

    def __init__(self, *, fast_forward: bool = True) -> None:
        self._components: list[Steppable] = []
        self._wiring: list[Callable[[], None]] = []
        self._wiring_idle_checks: list[Optional[Callable[[], bool]]] = []
        self.cycle = 0
        #: Master switch for the idle-span fast path.  Clearing it (or
        #: constructing with ``fast_forward=False``) forces the legacy
        #: per-cycle loop — the reference behaviour benchmarks and the
        #: equivalence test compare against.
        self.fast_forward = fast_forward
        #: Cycles that ran the full step-components-then-wire loop.
        self.cycles_stepped = 0
        #: Cycles skipped by fast-forward (no component stepped).
        self.cycles_fast_forwarded = 0
        self._ff_capable = True
        # Failed-jump backoff: scanning every component each cycle to
        # discover "someone is busy" costs more than the step itself,
        # so after a failed attempt the engine waits exponentially
        # longer (capped) before scanning again.  At worst the start of
        # an idle span is detected ``_FF_BACKOFF_CAP`` cycles late —
        # negligible against the spans worth skipping.
        self._ff_retry_cycle = 0
        self._ff_backoff = 1

    _FF_BACKOFF_CAP = 64

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def add_component(self, component: Steppable) -> None:
        self._components.append(component)
        self._refresh_ff_capability()

    def remove_component(self, component: Steppable) -> None:
        """Detach a component (fault injectors, watchdogs, controllers).

        The component simply stops being stepped; raises ValueError if
        it was never registered, so detach bugs surface immediately.

        Safe to call from inside a component's own ``step``: the engine
        steps a snapshot of the component list each cycle, so a removal
        mid-cycle never skips or double-steps a neighbour — it takes
        effect at the next cycle boundary (and the removed component
        still finishes the current cycle if it had not stepped yet).
        """
        try:
            self._components.remove(component)
        except ValueError:
            raise ValueError(
                f"component {component!r} is not registered with this engine"
            ) from None
        self._refresh_ff_capability()

    def add_wiring(
        self,
        transfer: Callable[[], None],
        *,
        idle_check: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Register a post-step signal copy (runs every stepped cycle).

        ``idle_check`` is the fast-forward contract for wiring: it must
        return True exactly when calling ``transfer`` right now would
        leave all simulation state unchanged (no signal to copy, no
        pending side effect).  Wiring registered without one is treated
        as always-active and disables fast-forward for the engine.
        """
        self._wiring.append(transfer)
        self._wiring_idle_checks.append(idle_check)
        self._refresh_ff_capability()

    def _refresh_ff_capability(self) -> None:
        self._ff_capable = (
            all(hasattr(c, "next_event_cycle") for c in self._components)
            and all(check is not None for check in self._wiring_idle_checks)
        )
        # A registration change can create a newly-idle configuration;
        # forget any backoff so the next cycle re-evaluates fresh.
        self._ff_retry_cycle = 0
        self._ff_backoff = 1

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state(self) -> dict:
        """Checkpoint state (see ``docs/checkpointing.md``)."""
        return {
            "cycle": self.cycle,
            "cycles_stepped": self.cycles_stepped,
            "cycles_fast_forwarded": self.cycles_fast_forwarded,
            "ff_retry_cycle": self._ff_retry_cycle,
            "ff_backoff": self._ff_backoff,
        }

    def load_state(self, state: dict) -> None:
        """Overlay checkpointed engine state.

        Must run *after* every component and wiring registration —
        registering resets the fast-forward backoff, which this
        restores to its checkpointed value.
        """
        self.cycle = int(state["cycle"])
        self.cycles_stepped = int(state["cycles_stepped"])
        self.cycles_fast_forwarded = int(state["cycles_fast_forwarded"])
        self._ff_retry_cycle = int(state["ff_retry_cycle"])
        self._ff_backoff = int(state["ff_backoff"])

    # ------------------------------------------------------------------
    # The per-cycle loop and the fast path
    # ------------------------------------------------------------------

    def _step_once(self) -> None:
        # Snapshot so add/remove_component from inside a step cannot
        # skip or double-step a neighbour (mutation during iteration).
        for component in tuple(self._components):
            component.step(self.cycle)
        for transfer in self._wiring:
            transfer()
        self.cycle += 1
        self.cycles_stepped += 1

    def _next_event_bound(self) -> Optional[float]:
        """Earliest future cycle at which anything can happen.

        Returns ``None`` when some component or wiring has work *now*
        (the engine must run the normal per-cycle loop), a cycle number
        when every component is quiescent until then, or ``math.inf``
        when the whole fabric is quiescent with no scheduled events at
        all — pure time passage.
        """
        bound: Optional[float] = None
        for component in self._components:
            nxt = component.next_event_cycle(self.cycle)
            if nxt is None:
                continue
            if nxt <= self.cycle:
                return None
            if bound is None or nxt < bound:
                bound = nxt
        for check in self._wiring_idle_checks:
            if not check():
                return None
        return bound if bound is not None else math.inf

    def _try_fast_forward(self, limit: int) -> bool:
        """Jump to the next event (capped at ``limit``) if provably idle."""
        if not (self.fast_forward and self._ff_capable):
            return False
        if self.cycle < self._ff_retry_cycle:
            return False
        bound = self._next_event_bound()
        if bound is None or bound <= self.cycle:
            self._ff_retry_cycle = self.cycle + self._ff_backoff
            self._ff_backoff = min(self._ff_backoff * 2,
                                   self._FF_BACKOFF_CAP)
            return False
        jump = int(min(bound, limit))
        if jump <= self.cycle:
            return False
        self._ff_backoff = 1
        self._ff_retry_cycle = 0
        self.cycles_fast_forwarded += jump - self.cycle
        self.cycle = jump
        return True

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, cycles: int) -> int:
        """Advance the fabric ``cycles`` cycles; returns the new time."""
        if cycles < 0:
            raise ValueError("cannot run a negative number of cycles")
        target = self.cycle + cycles
        while self.cycle < target:
            if self._try_fast_forward(target):
                continue
            self._step_once()
        return self.cycle

    def run_until(self, predicate: Callable[[], bool],
                  max_cycles: int = 1_000_000) -> int:
        """Run until ``predicate()`` holds; raises on timeout.

        Evaluation contract: the predicate is evaluated once *before*
        any stepping (so a condition that already holds returns
        immediately, advancing zero cycles) and then *after* every
        stepped cycle — i.e. post-step, with that cycle's component
        work and wiring applied and ``self.cycle`` already incremented.
        The returned cycle is therefore the first cycle count at which
        the predicate was observed true.

        Across a fast-forwarded span the predicate is evaluated at the
        span's end only.  Component state is constant over such a span,
        so any predicate that is a function of component/network state
        sees no difference; a predicate that reads the raw cycle count
        (e.g. ``lambda: engine.cycle >= n``) may be observed late — use
        :meth:`run` for fixed-duration waits instead.

        ``max_cycles`` bounds the *actual cycles advanced* (stepped
        plus fast-forwarded) before :class:`TimeoutError` is raised.
        """
        if max_cycles < 0:
            raise ValueError("max_cycles must be non-negative")
        if predicate():
            return self.cycle
        deadline = self.cycle + max_cycles
        while True:
            if self.cycle >= deadline:
                raise TimeoutError(
                    f"condition not reached within {max_cycles} cycles"
                )
            if self._try_fast_forward(deadline):
                if predicate():
                    return self.cycle
                continue
            self._step_once()
            if predicate():
                return self.cycle
