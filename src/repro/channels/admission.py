"""Admission control for real-time channels (paper sections 2 and 4.1).

Admitting a connection is the computationally heavy, non-real-time part
of the system that the chip deliberately leaves to protocol software.
This module implements it:

* **Link schedulability** — every link a connection crosses runs
  earliest-due-date scheduling over logical arrival times, so the
  admission test is the classical EDF demand-bound criterion applied to
  the link as a unit-rate server: in any busy interval of length ``t``,
  the packet slots demanded by messages whose deadlines fall inside the
  interval must not exceed ``t``.
* **Buffer reservation** — a connection needs at most
  ``ceil((h_prev + d_prev + d_j) / i_min) + (b_max - 1)`` message
  buffers at hop ``j`` (paper section 2); the sum of reservations at a
  node must fit its packet memory (optionally partitioned per output
  link, section 3.4).
* **Delay decomposition** — the end-to-end bound ``D`` is split into
  per-hop bounds ``d_j <= i_min`` that also respect the clock-rollover
  half-range condition (section 4.3).

All times are in scheduler ticks (packet transmission times).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.channels.spec import FlowRequirements, TrafficSpec
from repro.core.params import RouterParams


class AdmissionError(RuntimeError):
    """The network cannot accept the requested connection.

    Beyond the human-readable message, the error carries a structured
    rejection reason so admission outcomes can be tallied and reported
    (service SLO reports, campaign aggregation) without parsing text:

    ``reason``
        A stable kebab-case slug naming the failed check (e.g.
        ``link-schedulability``, ``buffer-capacity``,
        ``connection-ids``, ``deadline-too-tight``).
    ``node`` / ``port``
        Where the check failed, when it is localised to one router or
        one output link (``None`` for network-wide conditions).
    ``demanded`` / ``available``
        What the connection asked for versus what was left, in the
        failed check's own unit (packet buffers, utilisation,
        connection ids, ticks of deadline budget).
    """

    def __init__(self, message: str, *, reason: str = "unspecified",
                 node: object = None, port: Optional[int] = None,
                 demanded: object = None,
                 available: object = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.node = node
        self.port = port
        self.demanded = demanded
        self.available = available

    def details(self) -> dict:
        """The rejection as a canonical JSON-serialisable dict."""
        node = self.node
        if isinstance(node, tuple):
            node = list(node)
        return {
            "reason": self.reason,
            "message": str(self),
            "node": node,
            "port": self.port,
            "demanded": self.demanded,
            "available": self.available,
        }


#: Fixed per-hop latency margin (ticks) reserved out of each local
#: delay bound to cover store-and-forward transmission, the internal
#: bus, and the scheduler pipeline of the cycle-accurate router.
DEFAULT_HOP_OVERHEAD_TICKS = 2


@dataclass(frozen=True)
class ConnectionLoad:
    """One connection's demand as seen by a single link."""

    packets: int        # packet slots per message
    i_min: int          # message spacing, ticks
    b_max: int          # burst allowance, messages
    deadline: int       # local delay bound d at this link, ticks

    @property
    def utilisation(self) -> float:
        return self.packets / self.i_min

    def demand(self, interval: int) -> int:
        """EDF demand bound: slots due within a busy interval.

        Worst case, ``b_max`` messages arrive together at the start of
        the interval and the rest follow every ``i_min`` ticks; a
        message contributes once the interval reaches its deadline.
        """
        if interval < self.deadline:
            return 0
        return self.packets * (
            self.b_max + (interval - self.deadline) // self.i_min
        )

    def arrivals(self, interval: int) -> int:
        """Arrival bound: slots that can arrive in the interval."""
        if interval <= 0:
            return 0
        return self.packets * (self.b_max + interval // self.i_min)


class LinkSchedule:
    """Reserved state of one unidirectional link."""

    def __init__(self) -> None:
        self.loads: list[ConnectionLoad] = []

    @property
    def utilisation(self) -> float:
        return sum(load.utilisation for load in self.loads)

    def _busy_period(self, loads: list[ConnectionLoad]) -> Optional[int]:
        """Fixed point of the arrival bound; None when overloaded."""
        if sum(load.utilisation for load in loads) >= 1.0 + 1e-12:
            return None
        length = max(1, sum(load.packets * load.b_max for load in loads))
        for _ in range(10_000):
            arrivals = sum(load.arrivals(length) for load in loads)
            if arrivals <= length:
                return length
            length = arrivals
        return None

    def feasible_with(self, candidate: Optional[ConnectionLoad]) -> bool:
        """EDF demand-bound test with an optional additional load."""
        loads = self.loads + ([candidate] if candidate is not None else [])
        if not loads:
            return True
        horizon = self._busy_period(loads)
        if horizon is None:
            return False
        checkpoints: set[int] = set()
        for load in loads:
            t = load.deadline
            while t <= horizon:
                checkpoints.add(t)
                t += load.i_min
        return all(
            sum(load.demand(t) for load in loads) <= t
            for t in sorted(checkpoints)
        )

    def add(self, load: ConnectionLoad) -> None:
        self.loads.append(load)

    def remove(self, load: ConnectionLoad) -> None:
        self.loads.remove(load)


class NodeBuffers:
    """Packet-buffer reservations at one router.

    The packet memory is physically shared by the output links; the
    protocol software may *logically partition* it by handing each
    output link a quota, or leave it fully shared (``quotas=None``),
    trading isolation against admissibility (paper section 3.4).
    """

    def __init__(self, capacity: int,
                 quotas: Optional[dict[int, int]] = None) -> None:
        self.capacity = capacity
        self.quotas = quotas
        self.reserved_total = 0
        self.reserved_per_port: dict[int, int] = {}

    def feasible_with(self, port: int, packets: int) -> bool:
        if self.reserved_total + packets > self.capacity:
            return False
        if self.quotas is not None:
            quota = self.quotas.get(port, self.capacity)
            if self.reserved_per_port.get(port, 0) + packets > quota:
                return False
        return True

    def available(self, port: int) -> int:
        """Packet buffers still reservable on ``port`` at this node."""
        free = self.capacity - self.reserved_total
        if self.quotas is not None:
            quota = self.quotas.get(port, self.capacity)
            free = min(free, quota - self.reserved_per_port.get(port, 0))
        return free

    def reserve(self, port: int, packets: int) -> None:
        if not self.feasible_with(port, packets):
            raise AdmissionError(
                "buffer reservation exceeded capacity",
                reason="buffer-capacity", port=port,
                demanded=packets, available=self.available(port),
            )
        self.reserved_total += packets
        self.reserved_per_port[port] = (
            self.reserved_per_port.get(port, 0) + packets
        )

    def release(self, port: int, packets: int) -> None:
        self.reserved_total -= packets
        self.reserved_per_port[port] -= packets
        if self.reserved_total < 0 or self.reserved_per_port[port] < 0:
            raise RuntimeError("buffer release exceeded reservation")


def buffer_bound(spec: TrafficSpec, upstream_horizon: int,
                 upstream_delay: int, local_delay: int) -> int:
    """Packet buffers one connection needs at a node (paper section 2).

    A message can arrive up to ``h_prev + d_prev`` ticks before its
    logical arrival time and may stay until its local deadline
    ``d_j`` after it, so up to
    ``ceil((h_prev + d_prev + d_j) / i_min)`` periodic messages — plus
    the burst allowance — can coexist.
    """
    window = upstream_horizon + upstream_delay + local_delay
    messages = math.ceil(window / spec.i_min) + (spec.b_max - 1)
    return max(1, messages) * spec.packets_per_message


@dataclass(frozen=True)
class HopDescriptor:
    """One hop of a route, as admission control sees it.

    ``node`` identifies the router; ``out_port`` the output link the
    connection uses there (the reception port on the final hop);
    ``horizon`` the horizon register of that output port.
    """

    node: Hashable
    out_port: int
    horizon: int = 0


@dataclass
class Reservation:
    """Everything reserved for one admitted connection (for teardown)."""

    hops: list[HopDescriptor]
    local_delays: list[int]
    loads: list[ConnectionLoad]
    buffers: list[tuple[Hashable, int, int]]  # (node, port, packets)
    spec: Optional[TrafficSpec] = None
    parents: Optional[list[int]] = None


class AdmissionController:
    """Network-wide admission control and resource accounting.

    One instance serves a whole fabric: it tracks per-link EDF load and
    per-node buffer reservations, decomposes end-to-end deadlines, and
    either admits (reserving everything) or raises
    :class:`AdmissionError` leaving no residue.
    """

    def __init__(self, params: Optional[RouterParams] = None, *,
                 hop_overhead: int = DEFAULT_HOP_OVERHEAD_TICKS,
                 buffer_quotas: Optional[dict[int, int]] = None) -> None:
        self.params = params or RouterParams()
        self.hop_overhead = hop_overhead
        self.buffer_quotas = buffer_quotas
        self._links: dict[tuple[Hashable, int], LinkSchedule] = {}
        self._nodes: dict[Hashable, NodeBuffers] = {}

    # -- state accessors --------------------------------------------------

    def link(self, node: Hashable, port: int) -> LinkSchedule:
        return self._links.setdefault((node, port), LinkSchedule())

    def node(self, node: Hashable) -> NodeBuffers:
        return self._nodes.setdefault(
            node,
            NodeBuffers(self.params.tc_packet_slots, self.buffer_quotas),
        )

    # -- delay decomposition ------------------------------------------------

    def decompose_deadline(
        self, hops: list[HopDescriptor], spec: TrafficSpec,
        requirements: FlowRequirements,
    ) -> list[int]:
        """Split ``D`` into per-hop bounds honouring every constraint.

        Starts from an even split capped by ``i_min`` and the rollover
        half-range, then gives any remaining budget to links whose EDF
        test fails (a larger local deadline only ever helps EDF).
        """
        count = len(hops)
        if count == 0:
            raise AdmissionError("route has no hops", reason="empty-route")
        d_min = self.hop_overhead + 1
        d_cap = min(spec.i_min, self.params.half_range - 1)
        for hop in hops:
            d_cap = min(d_cap,
                        self.params.half_range - 1 - hop.horizon)
        if d_cap < d_min:
            raise AdmissionError(
                f"no feasible local delay bound: need at least {d_min} "
                f"ticks but caps allow only {d_cap}",
                reason="delay-caps", demanded=d_min, available=d_cap,
            )
        base = min(d_cap, requirements.deadline // count)
        if base < d_min:
            raise AdmissionError(
                f"end-to-end deadline {requirements.deadline} too tight "
                f"for a {count}-hop route (minimum {d_min * count})",
                reason="deadline-too-tight",
                demanded=d_min * count, available=requirements.deadline,
            )
        delays = [base] * count
        # Distribute leftover budget to hops with the most contended
        # links, up to the cap.
        slack = requirements.deadline - base * count
        if slack > 0 and base < d_cap:
            order = sorted(
                range(count),
                key=lambda i: -self.link(hops[i].node,
                                         hops[i].out_port).utilisation,
            )
            for index in order:
                if slack == 0:
                    break
                extra = min(d_cap - delays[index], slack)
                delays[index] += extra
                slack -= extra
        return delays

    # -- admission -----------------------------------------------------------

    def admit(self, hops: list[HopDescriptor], spec: TrafficSpec,
              requirements: FlowRequirements,
              local_delays: Optional[list[int]] = None,
              parents: Optional[list[int]] = None) -> Reservation:
        """Admit a connection along ``hops`` or raise AdmissionError.

        ``hops`` is linear by default; multicast trees pass ``parents``
        (the index of each hop's upstream hop, ``-1`` at the source) so
        buffer bounds use the right upstream delay and horizon.  On
        success every link and buffer reservation is recorded and a
        :class:`Reservation` is returned for later :meth:`release`.
        """
        if local_delays is None:
            local_delays = self.decompose_deadline(hops, spec, requirements)
        if len(local_delays) != len(hops):
            raise ValueError("one local delay bound per hop required")
        if parents is None:
            parents = list(range(-1, len(hops) - 1))
        if len(parents) != len(hops):
            raise ValueError("one parent index per hop required")
        # The end-to-end bound must hold along every root-to-leaf path.
        depth_delay = [0] * len(hops)
        for index, parent in enumerate(parents):
            upstream = depth_delay[parent] if parent >= 0 else 0
            depth_delay[index] = upstream + local_delays[index]
        if max(depth_delay) > requirements.deadline:
            raise AdmissionError(
                "local delay bounds exceed the deadline",
                reason="deadline-too-tight",
                demanded=max(depth_delay), available=requirements.deadline,
            )
        for delay, hop in zip(local_delays, hops):
            if delay <= self.hop_overhead:
                raise AdmissionError(
                    f"local delay bound {delay} leaves no slack over the "
                    f"per-hop overhead ({self.hop_overhead} ticks)",
                    reason="hop-overhead", node=hop.node, port=hop.out_port,
                    demanded=self.hop_overhead + 1, available=delay,
                )
            if delay > spec.i_min:
                raise AdmissionError(
                    "local delay bounds must not exceed i_min",
                    reason="delay-exceeds-imin", node=hop.node,
                    port=hop.out_port, demanded=delay, available=spec.i_min,
                )
            if (delay >= self.params.half_range
                    or hop.horizon + delay >= self.params.half_range):
                raise AdmissionError(
                    "delay/horizon violates the rollover half-range rule",
                    reason="rollover", node=hop.node, port=hop.out_port,
                    demanded=hop.horizon + delay,
                    available=self.params.half_range - 1,
                )

        # Phase 1: check everything without reserving.
        loads: list[ConnectionLoad] = []
        for hop, delay in zip(hops, local_delays):
            load = ConnectionLoad(
                packets=spec.packets_per_message, i_min=spec.i_min,
                b_max=spec.b_max,
                deadline=delay - self.hop_overhead,
            )
            schedule = self.link(hop.node, hop.out_port)
            if not schedule.feasible_with(load):
                raise AdmissionError(
                    f"link at {hop.node!r} port {hop.out_port} cannot "
                    "meet the deadline for the new connection",
                    reason="link-schedulability",
                    node=hop.node, port=hop.out_port,
                    demanded=round(load.utilisation, 6),
                    available=round(max(0.0, 1.0 - schedule.utilisation), 6),
                )
            loads.append(load)

        buffers: list[tuple[Hashable, int, int]] = []
        for index, (hop, delay) in enumerate(zip(hops, local_delays)):
            parent = parents[index]
            prev_horizon = hops[parent].horizon if parent >= 0 else 0
            prev_delay = local_delays[parent] if parent >= 0 else 0
            packets = buffer_bound(spec, prev_horizon, prev_delay, delay)
            node_buffers = self.node(hop.node)
            if not node_buffers.feasible_with(hop.out_port, packets):
                raise AdmissionError(
                    f"node {hop.node!r} lacks buffer space for the "
                    "new connection",
                    reason="buffer-capacity",
                    node=hop.node, port=hop.out_port, demanded=packets,
                    available=node_buffers.available(hop.out_port),
                )
            buffers.append((hop.node, hop.out_port, packets))

        # Phase 2: commit.
        for hop, load in zip(hops, loads):
            self.link(hop.node, hop.out_port).add(load)
        for node, port, packets in buffers:
            self.node(node).reserve(port, packets)
        return Reservation(hops=list(hops), local_delays=list(local_delays),
                           loads=loads, buffers=buffers, spec=spec,
                           parents=list(parents))

    def release(self, reservation: Reservation) -> None:
        """Tear down a connection's reservations."""
        for hop, load in zip(reservation.hops, reservation.loads):
            self.link(hop.node, hop.out_port).remove(load)
        for node, port, packets in reservation.buffers:
            self.node(node).release(port, packets)

    # -- checkpointing ----------------------------------------------------

    def state(self) -> dict:
        """Checkpoint state: every link schedule and buffer account.

        Loads are stored by value; :meth:`LinkSchedule.remove` works by
        value equality, so reservations restored elsewhere (channel
        handles) release cleanly against the rebuilt schedules.
        """
        return {
            "links": [
                [list(node), port,
                 [[load.packets, load.i_min, load.b_max, load.deadline]
                  for load in schedule.loads]]
                for (node, port), schedule in sorted(self._links.items())
            ],
            "nodes": [
                [list(node), buffers.reserved_total,
                 [[port, packets] for port, packets in sorted(
                     buffers.reserved_per_port.items())]]
                for node, buffers in sorted(self._nodes.items())
            ],
        }

    def load_state(self, state: dict) -> None:
        self._links.clear()
        for node, port, loads in state["links"]:
            schedule = self.link(tuple(node), port)
            schedule.loads = [
                ConnectionLoad(packets=packets, i_min=i_min, b_max=b_max,
                               deadline=deadline)
                for packets, i_min, b_max, deadline in loads
            ]
        self._nodes.clear()
        for node, total, per_port in state["nodes"]:
            buffers = self.node(tuple(node))
            buffers.reserved_total = int(total)
            buffers.reserved_per_port = {
                int(port): int(packets) for port, packets in per_port
            }

    # -- reporting -------------------------------------------------------------

    def link_utilisation(self, node: Hashable, port: int) -> float:
        return self.link(node, port).utilisation

    def node_buffer_usage(self, node: Hashable) -> int:
        return self.node(node).reserved_total

    def occupancy(self) -> dict:
        """Network-wide occupancy summary for threshold decisions.

        ``max_link_utilisation``/``mean_link_utilisation`` summarise
        only *loaded* links (a link that never carried a connection is
        not an observation), ``max_buffer_fill`` is the highest node
        packet-memory fill fraction, and the counts say how much of the
        fabric the maxima were taken over.
        """
        link_utils = [schedule.utilisation
                      for schedule in self._links.values()
                      if schedule.loads]
        capacity = self.params.tc_packet_slots
        fills = [buffers.reserved_total / capacity
                 for buffers in self._nodes.values()
                 if buffers.reserved_total]
        return {
            "max_link_utilisation": max(link_utils, default=0.0),
            "mean_link_utilisation": (
                sum(link_utils) / len(link_utils) if link_utils else 0.0
            ),
            "links_loaded": len(link_utils),
            "max_buffer_fill": max(fills, default=0.0),
            "buffers_reserved": sum(
                buffers.reserved_total for buffers in self._nodes.values()
            ),
        }
