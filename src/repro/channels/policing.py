"""Source traffic policing and regulation for real-time channels.

The network's guarantees assume each source honours its linear bounded
arrival process.  Two tools enforce and check that contract:

* :class:`SourceRegulator` — the protocol-software shaper at the
  source: it stamps messages with logical arrival times and computes
  the earliest *injection* instant at which a message may enter the
  network without exceeding the reserved buffer space downstream
  (rate-based flow control, paper Table 2).
* :func:`conformance_violations` — an offline checker that reports
  where a trace of generation times exceeds the contract, used by
  tests and by the misbehaving-source isolation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.channels.arrival import LogicalArrivalClock
from repro.channels.spec import TrafficSpec


@dataclass
class SourceRegulator:
    """Shapes one connection's injections to its traffic contract.

    A message with logical arrival time ``l0`` may be released into the
    network at ``l0 - horizon`` at the earliest (releasing any earlier
    could exceed the downstream buffer reservation).  Sources that only
    inject *at or after* each message's logical arrival time never need
    shaping; bursty sources are held back.
    """

    spec: TrafficSpec
    horizon: int = 0
    clock: LogicalArrivalClock = field(init=False)

    def __post_init__(self) -> None:
        if self.horizon < 0:
            raise ValueError("horizon must be non-negative")
        self.clock = LogicalArrivalClock(self.spec.i_min)

    def admit(self, generated_at: int) -> tuple[int, int]:
        """Stamp one message.

        Returns ``(logical_arrival, release_at)``: the message's
        logical arrival time and the earliest tick the source may hand
        it to the router's injection port.
        """
        arrival = self.clock.stamp(generated_at)
        release_at = max(generated_at, arrival - self.horizon)
        return arrival, release_at

    # -- checkpointing ----------------------------------------------------

    def state(self) -> dict:
        """Checkpoint state (the spec is restored by the channel)."""
        return {"horizon": self.horizon, "last": self.clock.last}

    def load_state(self, state: dict) -> None:
        self.horizon = int(state["horizon"])
        self.clock._last = state["last"]


def conformance_violations(
    generation_times: Iterable[int], spec: TrafficSpec,
) -> list[int]:
    """Indices of messages that exceed the linear bounded arrival process.

    A trace conforms when every closed window ``[t_j, t_i]`` holds at
    most ``b_max + (t_i - t_j) / i_min`` messages; message ``i`` is a
    violation when some earlier window ending at it overflows.  The
    check is quadratic in the trace length, which is fine for the test
    and experiment traces it serves.
    """
    times = sorted(generation_times)
    violations: list[int] = []
    for i in range(len(times)):
        for j in range(i):
            count = i - j + 1
            span = times[i] - times[j]
            if span < (count - spec.b_max) * spec.i_min:
                violations.append(i)
                break
    return violations
