"""Traffic specification of a real-time channel (paper section 2).

A real-time channel is a unidirectional virtual connection described by
a *linear bounded arrival process*: the minimum temporal spacing
between messages ``I_min``, the maximum message size ``S_max``, and a
burst allowance ``B_max`` of messages that may exceed the periodic
restriction.  Time is counted in scheduler *ticks* — one tick is one
packet transmission time (20 byte-cycles in the chip).

``S_max`` is in bytes of application payload; because the router uses
fixed 20-byte packets with an 18-byte payload, a message occupies
``packets_per_message`` consecutive packets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.params import TC_PAYLOAD_BYTES


@dataclass(frozen=True)
class TrafficSpec:
    """Linear-bounded-arrival-process description of a connection.

    ``i_min``
        Minimum spacing between message logical arrival times, ticks.
    ``s_max``
        Maximum message size in payload bytes.
    ``b_max``
        Maximum burst: messages that may arrive closer than ``i_min``
        (1 means strictly periodic traffic).
    """

    i_min: int
    s_max: int = TC_PAYLOAD_BYTES
    b_max: int = 1

    def __post_init__(self) -> None:
        if self.i_min < 1:
            raise ValueError("i_min must be at least one tick")
        if self.s_max < 1:
            raise ValueError("s_max must be at least one byte")
        if self.b_max < 1:
            raise ValueError("b_max must be at least one message")

    @property
    def packets_per_message(self) -> int:
        """Fixed-size packets needed to carry one maximum-size message."""
        return math.ceil(self.s_max / TC_PAYLOAD_BYTES)

    @property
    def utilisation(self) -> float:
        """Long-run link-slot demand: packet slots per tick."""
        return self.packets_per_message / self.i_min

    def max_messages(self, interval: int) -> int:
        """Upper bound on messages generated in any ``interval`` ticks.

        The linear bounded arrival process admits at most
        ``b_max + floor(interval / i_min)`` message logical arrivals in
        any half-open window of ``interval`` ticks.
        """
        if interval < 0:
            raise ValueError("interval must be non-negative")
        if interval == 0:
            return 0
        return self.b_max + interval // self.i_min


@dataclass(frozen=True)
class FlowRequirements:
    """Performance requirements of a connection.

    ``deadline``
        End-to-end delay bound ``D`` in ticks, measured from a
        message's logical arrival time at the source.
    """

    deadline: int

    def __post_init__(self) -> None:
        if self.deadline < 1:
            raise ValueError("deadline must be at least one tick")
