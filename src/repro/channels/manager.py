"""The protocol software that establishes real-time channels.

The chip deliberately leaves admission control, route selection and
table programming to software (paper section 4.1).  The
:class:`ChannelManager` is that software: given the routers of a
fabric, it selects routes, runs admission control, allocates
connection identifiers, decomposes deadlines, and drives each router's
four-write control interface.  The returned :class:`RealTimeChannel`
is the application-facing handle used to stamp and send messages.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.channels.admission import (
    AdmissionController,
    AdmissionError,
    ConnectionLoad,
    HopDescriptor,
    Reservation,
)
from repro.channels.arrival import LogicalArrivalClock
from repro.channels.policing import SourceRegulator
from repro.channels.routing import (
    Hop,
    Node,
    dimension_ordered_route,
    least_loaded_route,
    multicast_tree,
    tree_parents,
)
from repro.channels.spec import FlowRequirements, TrafficSpec
from repro.core.packet import PacketMeta, TimeConstrainedPacket
from repro.core.params import TC_PAYLOAD_BYTES, RouterParams
from repro.core.ports import RECEPTION

_channel_labels = itertools.count()


def channel_label_counter_state() -> int:
    """Next auto-label number to be issued (checkpointing)."""
    global _channel_labels
    value = next(_channel_labels)
    _channel_labels = itertools.count(value)
    return value


def load_channel_label_counter_state(value: int) -> None:
    global _channel_labels
    _channel_labels = itertools.count(int(value))


@dataclass
class RealTimeChannel:
    """An established real-time channel (application handle).

    ``source_connection_id`` is the identifier the host stamps on
    injected packets; the routers rewrite it hop by hop.  ``deadline``
    is the effective end-to-end bound: the sum of per-hop delay bounds
    along the deepest path, which is at most the requested ``D``.
    """

    label: str
    source: Node
    destinations: tuple[Node, ...]
    spec: TrafficSpec
    requirements: FlowRequirements
    source_connection_id: int
    local_delays: list[int]
    deadline: int
    reservation: Reservation
    regulator: SourceRegulator
    table_entries: list[tuple[Node, int]]  # (node, connection id) programmed
    _sequence: int = 0
    #: Set when the channel failed re-admission after a fault and was
    #: demoted to best-effort delivery (guarantees no longer hold).
    degraded: bool = False

    @property
    def jitter_bound(self) -> int:
        """Worst-case delivery-time jitter in ticks.

        A message can arrive as early as its final logical arrival time
        minus the last link's horizon window, and as late as the
        deadline, so the spread is bounded by the final hop's
        ``d + h_prev + d_prev`` (paper section 2's window, applied to
        the destination).  With zero horizons this is the last two
        delay bounds combined; single-hop channels jitter by ``d``.
        """
        hops = self.reservation.hops
        delays = self.reservation.local_delays
        last = len(delays) - 1
        prev_h = hops[last - 1].horizon if last > 0 else 0
        prev_d = delays[last - 1] if last > 0 else 0
        return delays[last] + prev_h + prev_d

    def make_message(
        self, payload: bytes, now_tick: int,
    ) -> tuple[list[TimeConstrainedPacket], int, int]:
        """Package one application message for injection.

        Returns ``(packets, logical_arrival, release_tick)``.  The
        message is fragmented into fixed-size packets sharing the same
        logical arrival time and end-to-end deadline; ``release_tick``
        is the earliest tick the source may inject (rate-based source
        flow control).
        """
        if len(payload) > self.spec.s_max:
            raise ValueError(
                f"message of {len(payload)} bytes exceeds the channel's "
                f"S_max = {self.spec.s_max}"
            )
        arrival, release = self.regulator.admit(now_tick)
        packets: list[TimeConstrainedPacket] = []
        for offset in range(0, max(1, len(payload)), TC_PAYLOAD_BYTES):
            fragment = payload[offset:offset + TC_PAYLOAD_BYTES]
            fragment = fragment.ljust(TC_PAYLOAD_BYTES, b"\x00")
            meta = PacketMeta(
                source=self.source,
                destination=self.destinations[0],
                absolute_deadline=arrival + self.deadline,
                connection_label=self.label,
                sequence=self._sequence,
            )
            packets.append(TimeConstrainedPacket(
                connection_id=self.source_connection_id,
                header_deadline=arrival,  # wrapped by serialisation
                payload=fragment,
                meta=meta,
            ))
            self._sequence += 1
        return packets, arrival, release


class ChannelManager:
    """Connection establishment over a fabric of real-time routers."""

    def __init__(
        self,
        routers: Mapping[Node, object],
        admission: Optional[AdmissionController] = None,
        params: Optional[RouterParams] = None,
    ) -> None:
        self.routers = routers
        self.params = params or RouterParams()
        self.admission = admission or AdmissionController(self.params)
        self._used_ids: dict[Node, set[int]] = {
            node: set() for node in routers
        }
        self.channels: list[RealTimeChannel] = []
        #: Channels demoted to best-effort after failing re-admission,
        #: keyed by label (their guaranteed-service state is torn down).
        self.degraded_channels: dict[str, RealTimeChannel] = {}

    # -- identifier allocation ---------------------------------------------

    def _allocate_id(self, node: Node) -> int:
        used = self._used_ids[node]
        for cid in range(self.params.connections):
            if cid not in used:
                used.add(cid)
                return cid
        raise AdmissionError(
            f"router {node!r} has no free connection ids",
            reason="connection-ids", node=node,
            demanded=1, available=0,
        )

    def _allocate_common_id(self, nodes: Sequence[Node]) -> int:
        for cid in range(self.params.connections):
            if all(cid not in self._used_ids[node] for node in nodes):
                for node in nodes:
                    self._used_ids[node].add(cid)
                return cid
        raise AdmissionError(
            "no connection id free at every tree node",
            reason="connection-ids", demanded=1, available=0,
        )

    # -- establishment --------------------------------------------------------

    def establish(
        self,
        source: Node,
        destination: Node | Sequence[Node],
        spec: TrafficSpec,
        deadline: int,
        *,
        route: Optional[list[Hop]] = None,
        label: Optional[str] = None,
        adaptive: bool = True,
    ) -> RealTimeChannel:
        """Create a real-time channel or raise :class:`AdmissionError`.

        ``destination`` may be a single node or a sequence of nodes
        (multicast).  ``route`` overrides route selection for unicast
        channels; by default the least-loaded of the two dimension
        orders is chosen (``adaptive=False`` forces dimension order).
        """
        requirements = FlowRequirements(deadline=deadline)
        if label is None:
            label = f"channel-{next(_channel_labels)}"
        if isinstance(destination, tuple) and len(destination) == 2 and all(
                isinstance(c, int) for c in destination):
            destinations: tuple[Node, ...] = (destination,)
        else:
            destinations = tuple(destination)
        if len(destinations) == 1:
            return self._establish_unicast(
                source, destinations[0], spec, requirements,
                route=route, label=label, adaptive=adaptive,
            )
        if route is not None:
            raise ValueError("explicit routes only apply to unicast")
        return self._establish_multicast(
            source, destinations, spec, requirements, label=label,
        )

    def _hop_descriptors(self, route: list[Hop]) -> list[HopDescriptor]:
        hops = []
        for node, port in route:
            router = self.routers[node]
            horizon = router.control.horizons[port]
            hops.append(HopDescriptor(node=node, out_port=port,
                                      horizon=horizon))
        return hops

    def _establish_unicast(
        self, source: Node, destination: Node, spec: TrafficSpec,
        requirements: FlowRequirements, *, route: Optional[list[Hop]],
        label: str, adaptive: bool,
    ) -> RealTimeChannel:
        if route is None:
            if adaptive:
                route = least_loaded_route(self.admission, source,
                                           destination)
            else:
                route = dimension_ordered_route(source, destination)
        for node, __ in route:
            if node not in self.routers:
                raise ValueError(f"route visits unknown node {node!r}")
        hops = self._hop_descriptors(route)
        reservation = self.admission.admit(hops, spec, requirements)
        delays = reservation.local_delays

        # Allocate one id per node and chain them.  The reservation is
        # already committed, so an id shortage must roll it (and any
        # partially allocated ids) back before propagating — otherwise
        # every failed establishment would leak link load and buffers.
        nodes = [node for node, __ in route]
        ids: list[int] = []
        try:
            for node in nodes:
                ids.append(self._allocate_id(node))
        except AdmissionError:
            for node, cid in zip(nodes, ids):
                self._used_ids[node].discard(cid)
            self.admission.release(reservation)
            raise
        entries: list[tuple[Node, int]] = []
        for index, (node, port) in enumerate(route):
            outgoing = ids[index + 1] if index + 1 < len(ids) else 0
            self.routers[node].control.program_connection(
                incoming_id=ids[index], outgoing_id=outgoing,
                delay=delays[index], port_mask=1 << port,
            )
            entries.append((node, ids[index]))
        channel = RealTimeChannel(
            label=label, source=source, destinations=(destination,),
            spec=spec, requirements=requirements,
            source_connection_id=ids[0], local_delays=list(delays),
            deadline=sum(delays), reservation=reservation,
            regulator=SourceRegulator(spec),
            table_entries=entries,
        )
        self.channels.append(channel)
        return channel

    def _establish_multicast(
        self, source: Node, destinations: tuple[Node, ...],
        spec: TrafficSpec, requirements: FlowRequirements, *, label: str,
        tree: Optional[tuple[dict[Node, set[int]], list[Node]]] = None,
    ) -> RealTimeChannel:
        if tree is not None:
            ports_by_node, order = tree
        else:
            ports_by_node, order = multicast_tree(source, list(destinations))
        for node in order:
            if node not in self.routers:
                raise ValueError(f"tree visits unknown node {node!r}")
        parents_map = tree_parents(ports_by_node, order)

        # One hop per (node, out port); all hops at a node share the
        # node's delay bound (hardware stores a single d per entry).
        hops: list[HopDescriptor] = []
        hop_parent: list[int] = []
        node_first_hop: dict[Node, int] = {}
        for node in order:
            for port in sorted(ports_by_node[node]):
                router = self.routers[node]
                descriptor = HopDescriptor(
                    node=node, out_port=port,
                    horizon=router.control.horizons[port],
                )
                parent_node = parents_map[node]
                parent_index = (
                    node_first_hop[parent_node]
                    if parent_node is not None else -1
                )
                node_first_hop.setdefault(node, len(hops))
                hops.append(descriptor)
                hop_parent.append(parent_index)

        depth = self._tree_depth(order, parents_map)
        d_min = self.admission.hop_overhead + 1
        d_cap = min(spec.i_min, self.params.half_range - 1)
        uniform = min(d_cap, requirements.deadline // depth)
        if uniform < d_min:
            raise AdmissionError(
                f"deadline {requirements.deadline} too tight for a "
                f"depth-{depth} multicast tree",
                reason="deadline-too-tight",
                demanded=d_min * depth, available=requirements.deadline,
            )
        delays = [uniform] * len(hops)
        reservation = self.admission.admit(
            hops, spec, requirements, local_delays=delays,
            parents=hop_parent,
        )

        try:
            common_id = self._allocate_common_id(order)
        except AdmissionError:
            self.admission.release(reservation)
            raise
        entries: list[tuple[Node, int]] = []
        for node in order:
            mask = 0
            for port in ports_by_node[node]:
                mask |= 1 << port
            self.routers[node].control.program_connection(
                incoming_id=common_id, outgoing_id=common_id,
                delay=uniform, port_mask=mask,
            )
            entries.append((node, common_id))
        channel = RealTimeChannel(
            label=label, source=source, destinations=destinations,
            spec=spec, requirements=requirements,
            source_connection_id=common_id,
            local_delays=[uniform] * depth, deadline=uniform * depth,
            reservation=reservation, regulator=SourceRegulator(spec),
            table_entries=entries,
        )
        self.channels.append(channel)
        return channel

    @staticmethod
    def _tree_depth(order: list[Node],
                    parents_map: dict[Node, Optional[Node]]) -> int:
        depth: dict[Node, int] = {}
        for node in order:
            parent = parents_map[node]
            depth[node] = 1 if parent is None else depth[parent] + 1
        # A packet is delayed once per node on its path (by the link
        # port at interior nodes, by the reception port at leaves), so
        # the deepest delay chain equals the deepest node depth.
        return max(depth.values()) if depth else 1

    # -- horizon management ---------------------------------------------------------

    def reduce_horizon(self, node: Node, port: int, horizon: int) -> int:
        """Lower one output port's horizon register, freeing buffers.

        Paper section 4.1: "the protocol software could reduce a
        port's horizon parameter as more connections are established,
        to free downstream buffer space for reservation by the new
        connections."  Reducing a horizon only ever shrinks the window
        ``h + d_prev + d`` of every connection crossing the link, so
        the change is always safe; this method updates the register,
        recomputes every affected reservation's buffer demand at the
        downstream hop, and releases the difference.  Returns the
        number of packet buffers freed.
        """
        router = self.routers[node]
        current = router.control.horizons[port]
        if horizon > current:
            raise ValueError(
                "reduce_horizon only lowers a horizon; raising one "
                "requires re-admitting the affected connections"
            )
        if horizon == current:
            return 0
        router.control.write_horizon(1 << port, horizon)

        freed = 0
        from repro.channels.admission import buffer_bound

        for channel in self.channels:
            reservation = channel.reservation
            if reservation.spec is None or reservation.parents is None:
                continue
            for index, hop in enumerate(reservation.hops):
                parent = reservation.parents[index]
                if parent < 0:
                    continue
                upstream = reservation.hops[parent]
                if upstream.node != node or upstream.out_port != port:
                    continue
                old = reservation.buffers[index][2]
                new = buffer_bound(
                    reservation.spec, horizon,
                    reservation.local_delays[parent],
                    reservation.local_delays[index],
                )
                if new < old:
                    self.admission.node(hop.node).release(
                        hop.out_port, old - new)
                    reservation.buffers[index] = (
                        hop.node, hop.out_port, new)
                    freed += old - new
                # Track the new horizon in the descriptor so later
                # recomputations start from the right value.
                reservation.hops[parent] = HopDescriptor(
                    node=upstream.node, out_port=upstream.out_port,
                    horizon=horizon,
                )
        return freed

    # -- fault recovery -----------------------------------------------------------

    def reroute(self, channel: RealTimeChannel, route: list[Hop],
                ) -> RealTimeChannel:
        """Re-establish a channel on an explicit replacement route.

        Fault recovery after a link failure: the old reservations and
        table entries are torn down, the channel is admitted on the new
        route, and a fresh handle (same label, spec, requirements, and
        regulator state so logical arrival times stay monotone) is
        returned.  If the new route cannot be admitted the old channel
        is left intact and the AdmissionError propagates.
        """
        if channel not in self.channels:
            raise ValueError("channel is not managed by this manager")
        if len(channel.destinations) != 1:
            raise ValueError("rerouting is supported for unicast channels")
        replacement = self._establish_unicast(
            channel.source, channel.destinations[0], channel.spec,
            channel.requirements, route=route,
            label=channel.label, adaptive=False,
        )
        # Only after the replacement is safely admitted, retire the old
        # path — and carry the regulator so spacing guarantees persist.
        replacement.regulator = channel.regulator
        replacement._sequence = channel._sequence
        self.teardown(channel)
        return replacement

    def reroute_multicast(
        self, channel: RealTimeChannel,
        ports_by_node: dict[Node, set[int]], order: list[Node],
    ) -> RealTimeChannel:
        """Re-establish a multicast channel on an explicit replacement tree.

        The counterpart of :meth:`reroute` for multicast: the new tree
        (typically from
        :func:`~repro.channels.routing.multicast_tree_avoiding`) is
        admitted and programmed first; only then is the old tree torn
        down.  Regulator state and sequence numbers carry over so the
        spacing guarantees and delivery accounting stay continuous.
        """
        if channel not in self.channels:
            raise ValueError("channel is not managed by this manager")
        if len(channel.destinations) == 1:
            raise ValueError("use reroute for unicast channels")
        replacement = self._establish_multicast(
            channel.source, channel.destinations, channel.spec,
            channel.requirements, label=channel.label,
            tree=(ports_by_node, order),
        )
        replacement.regulator = channel.regulator
        replacement._sequence = channel._sequence
        self.teardown(channel)
        return replacement

    def degrade(self, channel: RealTimeChannel) -> RealTimeChannel:
        """Demote a channel to best-effort delivery.

        Called when no replacement route passes admission: the
        guaranteed-service state (tables, reservations) is released and
        the handle is flagged ``degraded`` and kept in
        :attr:`degraded_channels` so the network layer can fall back to
        best-effort wormhole delivery for subsequent sends.
        """
        if channel not in self.channels:
            raise ValueError("channel is not managed by this manager")
        self.teardown(channel)
        channel.degraded = True
        self.degraded_channels[channel.label] = channel
        return channel

    def find(self, label: str) -> Optional[RealTimeChannel]:
        """Current handle for a channel label (live first, then degraded).

        Rerouting replaces channel handles; applications that captured
        a handle before a fault resolve the live one through its label.
        """
        for channel in self.channels:
            if channel.label == label:
                return channel
        return self.degraded_channels.get(label)

    # -- checkpointing -----------------------------------------------------------

    @staticmethod
    def _channel_state(channel: RealTimeChannel) -> dict:
        reservation = channel.reservation
        return {
            "label": channel.label,
            "source": list(channel.source),
            "destinations": [list(d) for d in channel.destinations],
            "spec": [channel.spec.i_min, channel.spec.s_max,
                     channel.spec.b_max],
            "deadline_requirement": channel.requirements.deadline,
            "source_connection_id": channel.source_connection_id,
            "local_delays": list(channel.local_delays),
            "deadline": channel.deadline,
            "reservation": {
                "hops": [[list(h.node), h.out_port, h.horizon]
                         for h in reservation.hops],
                "local_delays": list(reservation.local_delays),
                "loads": [[l.packets, l.i_min, l.b_max, l.deadline]
                          for l in reservation.loads],
                "buffers": [[list(node), port, packets]
                            for node, port, packets
                            in reservation.buffers],
                "spec": (None if reservation.spec is None
                         else [reservation.spec.i_min,
                               reservation.spec.s_max,
                               reservation.spec.b_max]),
                "parents": (None if reservation.parents is None
                            else list(reservation.parents)),
            },
            "regulator": channel.regulator.state(),
            "table_entries": [[list(node), cid]
                              for node, cid in channel.table_entries],
            "sequence": channel._sequence,
            "degraded": channel.degraded,
        }

    @staticmethod
    def _load_channel(state: dict) -> RealTimeChannel:
        spec = TrafficSpec(*state["spec"])
        res = state["reservation"]
        reservation = Reservation(
            hops=[HopDescriptor(node=tuple(node), out_port=port,
                                horizon=horizon)
                  for node, port, horizon in res["hops"]],
            local_delays=[int(d) for d in res["local_delays"]],
            loads=[ConnectionLoad(packets=p, i_min=i, b_max=b, deadline=d)
                   for p, i, b, d in res["loads"]],
            buffers=[(tuple(node), port, packets)
                     for node, port, packets in res["buffers"]],
            spec=None if res["spec"] is None else TrafficSpec(*res["spec"]),
            parents=(None if res["parents"] is None
                     else [int(p) for p in res["parents"]]),
        )
        regulator = SourceRegulator(spec)
        regulator.load_state(state["regulator"])
        channel = RealTimeChannel(
            label=state["label"],
            source=tuple(state["source"]),
            destinations=tuple(tuple(d) for d in state["destinations"]),
            spec=spec,
            requirements=FlowRequirements(
                deadline=state["deadline_requirement"]),
            source_connection_id=state["source_connection_id"],
            local_delays=[int(d) for d in state["local_delays"]],
            deadline=int(state["deadline"]),
            reservation=reservation,
            regulator=regulator,
            table_entries=[(tuple(node), cid)
                           for node, cid in state["table_entries"]],
            _sequence=int(state["sequence"]),
            degraded=bool(state["degraded"]),
        )
        return channel

    def state(self) -> dict:
        """Checkpoint state: channel handles are serialised in full —
        chaos runs reroute, degrade and tear channels down mid-run, so
        replaying establishment cannot reproduce this state."""
        return {
            "channel_labels": channel_label_counter_state(),
            "used_ids": [[list(node), sorted(ids)]
                         for node, ids in sorted(self._used_ids.items())],
            "channels": [self._channel_state(c) for c in self.channels],
            "degraded_channels": [self._channel_state(c)
                                  for c in self.degraded_channels.values()],
        }

    def load_state(self, state: dict) -> None:
        """Restore channel software on a fabric whose router tables are
        restored separately (the channels are *not* re-programmed)."""
        load_channel_label_counter_state(state["channel_labels"])
        for ids in self._used_ids.values():
            ids.clear()
        for node, ids in state["used_ids"]:
            self._used_ids[tuple(node)] = {int(cid) for cid in ids}
        self.channels = [self._load_channel(s) for s in state["channels"]]
        self.degraded_channels = {
            channel.label: channel
            for channel in (self._load_channel(s)
                            for s in state["degraded_channels"])
        }

    # -- teardown ----------------------------------------------------------------

    def teardown(self, channel: RealTimeChannel) -> None:
        """Release a channel: tables invalidated, resources freed."""
        if channel not in self.channels:
            raise ValueError("channel is not managed by this manager")
        for node, cid in channel.table_entries:
            self.routers[node].control.table.invalidate(cid)
            self._used_ids[node].discard(cid)
        self.admission.release(channel.reservation)
        self.channels.remove(channel)

    def teardown_label(self, label: str) -> bool:
        """Tear down the live channel named ``label``, if any.

        Returns ``True`` when a live channel was found and released.
        A label that only exists in :attr:`degraded_channels` has no
        guaranteed-service state left to release; use
        :meth:`forget_degraded` to drop the handle itself.
        """
        for channel in self.channels:
            if channel.label == label:
                self.teardown(channel)
                return True
        return False

    def forget_degraded(self, label: str) -> bool:
        """Drop a degraded channel handle (its state is already freed).

        Long-running services retire demoted channels when their flows
        end; without this the degraded table would grow without bound.
        """
        return self.degraded_channels.pop(label, None) is not None
