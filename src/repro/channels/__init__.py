"""Real-time channels: traffic contracts, admission, and establishment.

This package is the paper's section 2 and section 4.1 — the protocol
software side of the system.  :class:`TrafficSpec` and
:class:`FlowRequirements` describe a connection;
:class:`AdmissionController` decides whether the network can carry it;
:class:`ChannelManager` programs the routers and hands back a
:class:`RealTimeChannel` for sending messages.
"""

from repro.channels.admission import (
    AdmissionController,
    AdmissionError,
    ConnectionLoad,
    HopDescriptor,
    LinkSchedule,
    NodeBuffers,
    Reservation,
    buffer_bound,
)
from repro.channels.arrival import LogicalArrivalClock, hop_arrival_times
from repro.channels.manager import ChannelManager, RealTimeChannel
from repro.channels.policing import SourceRegulator, conformance_violations
from repro.channels.routing import (
    dimension_ordered_route,
    least_loaded_route,
    minimal_routes,
    multicast_tree,
    route_length,
    tree_parents,
    y_first_route,
)
from repro.channels.spec import FlowRequirements, TrafficSpec

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "ChannelManager",
    "ConnectionLoad",
    "FlowRequirements",
    "HopDescriptor",
    "LinkSchedule",
    "LogicalArrivalClock",
    "NodeBuffers",
    "RealTimeChannel",
    "Reservation",
    "SourceRegulator",
    "TrafficSpec",
    "buffer_bound",
    "conformance_violations",
    "dimension_ordered_route",
    "hop_arrival_times",
    "least_loaded_route",
    "minimal_routes",
    "multicast_tree",
    "route_length",
    "tree_parents",
    "y_first_route",
]
