"""Logical arrival times (paper section 2).

A message generated at time ``t_i`` has logical arrival time::

    l0(m_i) = t_i                                   if i == 0
    l0(m_i) = max(l0(m_{i-1}) + I_min, t_i)         if i > 0

Basing guarantees on logical rather than actual arrival times limits
the influence an ill-behaved or malicious source can have on other
traffic: a source that generates faster than its contract only pushes
its *own* logical arrival times (and hence deadlines) into the future.

Downstream, ``l_j(m_i) = l_{j-1}(m_i) + d_{j-1}`` — each hop's deadline
is the next hop's logical arrival time, which is how the router chip
carries the value in the packet header.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class LogicalArrivalClock:
    """Source-side generator of logical arrival times (unwrapped ticks)."""

    i_min: int
    _last: Optional[int] = None

    def __post_init__(self) -> None:
        if self.i_min < 1:
            raise ValueError("i_min must be at least one tick")

    def stamp(self, generated_at: int) -> int:
        """Logical arrival time for a message generated at this tick."""
        if self._last is None:
            arrival = generated_at
        else:
            arrival = max(self._last + self.i_min, generated_at)
        self._last = arrival
        return arrival

    @property
    def last(self) -> Optional[int]:
        return self._last

    def reset(self) -> None:
        self._last = None


def hop_arrival_times(l0: int, local_delays: list[int]) -> list[int]:
    """Logical arrival times at every hop given the source value.

    Returns ``[l_0, l_1, ..., l_H]`` where ``l_j = l_{j-1} + d_{j-1}``;
    the final entry is the end-to-end deadline when the decomposition
    saturates the budget.
    """
    arrivals = [l0]
    for delay in local_delays:
        arrivals.append(arrivals[-1] + delay)
    return arrivals
