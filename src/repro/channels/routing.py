"""Route selection for real-time channels (paper section 3.3).

Time-constrained connections follow a *fixed* route chosen at
establishment time by protocol software; the chip only follows the
routing tables.  This module provides the route-construction policies:

* :func:`dimension_ordered_route` — the default x-then-y path.
* :func:`minimal_routes` — both dimension orders (x-first, y-first),
  the candidate set the protocol software picks from.
* :func:`least_loaded_route` — picks the candidate whose most-loaded
  link has the lowest reserved utilisation (resource-aware selection).
* :func:`multicast_tree` — merges dimension-ordered paths to several
  destinations into one routing tree with per-node output-port sets
  (table-driven multicast).

Routes are lists of ``(node, out_port)`` pairs over mesh coordinates
``(x, y)``; the final hop of a path uses the reception port.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.channels.admission import AdmissionController
from repro.core.ports import EAST, NORTH, RECEPTION, SOUTH, WEST

Node = tuple[int, int]
Hop = tuple[Node, int]


def _x_steps(src: Node, dst: Node) -> list[Hop]:
    hops: list[Hop] = []
    x, y = src
    while x != dst[0]:
        port = EAST if dst[0] > x else WEST
        hops.append(((x, y), port))
        x += 1 if dst[0] > x else -1
    return hops


def _y_steps(src: Node, dst: Node) -> list[Hop]:
    hops: list[Hop] = []
    x, y = src
    while y != dst[1]:
        port = NORTH if dst[1] > y else SOUTH
        hops.append(((x, y), port))
        y += 1 if dst[1] > y else -1
    return hops


def dimension_ordered_route(src: Node, dst: Node) -> list[Hop]:
    """X-then-y shortest path, ending with the reception hop."""
    hops = _x_steps(src, dst)
    corner = (dst[0], src[1])
    hops.extend(_y_steps(corner, dst))
    hops.append((dst, RECEPTION))
    return hops


def y_first_route(src: Node, dst: Node) -> list[Hop]:
    """Y-then-x shortest path (the alternate dimension order)."""
    hops = _y_steps(src, dst)
    corner = (src[0], dst[1])
    hops.extend(_x_steps(corner, dst))
    hops.append((dst, RECEPTION))
    return hops


def minimal_routes(src: Node, dst: Node) -> list[list[Hop]]:
    """Candidate shortest paths: both dimension orders (deduplicated)."""
    xy = dimension_ordered_route(src, dst)
    yx = y_first_route(src, dst)
    return [xy] if xy == yx else [xy, yx]


def least_loaded_route(
    admission: AdmissionController, src: Node, dst: Node,
) -> list[Hop]:
    """Choose the candidate route minimising the bottleneck utilisation.

    Ties break toward the dimension-ordered route.  Only link (not
    reception) hops count toward the bottleneck.
    """
    def bottleneck(route: list[Hop]) -> float:
        links = [hop for hop in route if hop[1] != RECEPTION]
        if not links:
            return 0.0
        return max(admission.link_utilisation(node, port)
                   for node, port in links)

    candidates = minimal_routes(src, dst)
    return min(candidates, key=bottleneck)


def multicast_tree(
    src: Node, destinations: list[Node],
    admission: Optional[AdmissionController] = None,
) -> tuple[dict[Node, set[int]], list[Node]]:
    """Merge per-destination routes into one multicast routing tree.

    Returns ``(ports_by_node, order)`` where ``ports_by_node`` maps
    each tree node to the set of output ports it forwards on (including
    the reception port at destinations), and ``order`` lists the nodes
    from the source outward (parents before children) — the order in
    which connection tables must be programmed and walked.
    """
    if not destinations:
        raise ValueError("multicast needs at least one destination")
    ports_by_node: dict[Node, set[int]] = {}
    for dst in destinations:
        if admission is not None:
            route = least_loaded_route(admission, src, dst)
        else:
            route = dimension_ordered_route(src, dst)
        for node, port in route:
            ports_by_node.setdefault(node, set()).add(port)

    # Breadth-first order from the source along tree edges.
    from repro.core.ports import DISPLACEMENT

    order: list[Node] = []
    frontier = [src]
    seen = {src}
    while frontier:
        node = frontier.pop(0)
        order.append(node)
        for port in sorted(ports_by_node.get(node, ())):
            if port == RECEPTION:
                continue
            dx, dy = DISPLACEMENT[port]
            child = (node[0] + dx, node[1] + dy)
            if child not in seen and child in ports_by_node:
                seen.add(child)
                frontier.append(child)
    if set(order) != set(ports_by_node):
        raise RuntimeError("multicast tree is not connected")
    return ports_by_node, order


def _tree_order(
    src: Node, ports_by_node: dict[Node, set[int]],
) -> list[Node]:
    """Breadth-first programming order of a multicast tree (source out)."""
    from repro.core.ports import DISPLACEMENT

    order: list[Node] = []
    frontier = [src]
    seen = {src}
    while frontier:
        node = frontier.pop(0)
        order.append(node)
        for port in sorted(ports_by_node.get(node, ())):
            if port == RECEPTION:
                continue
            dx, dy = DISPLACEMENT[port]
            child = (node[0] + dx, node[1] + dy)
            if child not in seen and child in ports_by_node:
                seen.add(child)
                frontier.append(child)
    if set(order) != set(ports_by_node):
        raise RuntimeError("multicast tree is not connected")
    return order


def multicast_tree_avoiding(
    width: int, height: int, src: Node, destinations: list[Node],
    failed: set[Hop], torus: bool = False,
) -> tuple[dict[Node, set[int]], list[Node]]:
    """Multicast routing tree that avoids failed links.

    All destination paths are taken from a *single* breadth-first
    shortest-path tree rooted at the source, so their union is a proper
    tree: two destinations sharing an ancestor share the whole prefix,
    and no node ever receives the same packet twice (which the
    connection tables could not express anyway).  Raises
    :class:`RouteError` if any destination is unreachable.
    """
    from collections import deque as _deque

    from repro.core.ports import DISPLACEMENT

    if not destinations:
        raise ValueError("multicast needs at least one destination")
    for dst in destinations:
        if (dst, RECEPTION) in failed:
            raise RouteError(f"reception port at {dst!r} is failed")
    parents: dict[Node, Optional[Hop]] = {src: None}
    frontier = _deque([src])
    while frontier:
        node = frontier.popleft()
        for port, (dx, dy) in DISPLACEMENT.items():
            if (node, port) in failed:
                continue
            nxt = (node[0] + dx, node[1] + dy)
            if torus:
                nxt = (nxt[0] % width, nxt[1] % height)
            elif not (0 <= nxt[0] < width and 0 <= nxt[1] < height):
                continue
            if nxt in parents:
                continue
            parents[nxt] = (node, port)
            frontier.append(nxt)

    ports_by_node: dict[Node, set[int]] = {src: set()}
    for dst in destinations:
        if dst not in parents:
            raise RouteError(
                f"no route from {src!r} to {dst!r} avoiding "
                f"{len(failed)} failed links"
            )
        ports_by_node.setdefault(dst, set()).add(RECEPTION)
        node = dst
        while parents[node] is not None:
            up_node, up_port = parents[node]
            ports_by_node.setdefault(up_node, set()).add(up_port)
            node = up_node
    return ports_by_node, _tree_order(src, ports_by_node)


def best_effort_relay(
    width: int, height: int, src: Node, dst: Node, avoid: set[Hop],
) -> list[Node]:
    """Waypoint chain steering dimension-ordered wormholes around faults.

    Best-effort routing is hard-wired x-then-y, so the only way host
    software can route a wormhole packet around a dead link is to relay
    it through intermediate hosts.  This plans the chain: a breadth-
    first shortest path avoiding ``avoid`` is decomposed into straight
    segments (each trivially a safe dimension-ordered leg), then
    adjacent legs are greedily merged whenever the direct
    dimension-ordered route between their endpoints also avoids the
    faulty links.  Returns the waypoints after the source, ending with
    the destination; ``[dst]`` means a direct send is safe.
    """
    path = shortest_route_avoiding(width, height, src, dst, avoid)
    from repro.core.ports import DISPLACEMENT

    # Node sequence along the path (link hops only).
    nodes = [src]
    for node, port in path:
        if port == RECEPTION:
            continue
        dx, dy = DISPLACEMENT[port]
        nodes.append((node[0] + dx, node[1] + dy))

    def leg_safe(a: Node, b: Node) -> bool:
        return not any(hop in avoid for hop in dimension_ordered_route(a, b))

    waypoints: list[Node] = []
    leg_start = src
    i = 1
    while i < len(nodes):
        # Extend the current leg as far as it stays dimension-order safe.
        reach = i
        while reach + 1 < len(nodes) and leg_safe(leg_start, nodes[reach + 1]):
            reach += 1
        waypoints.append(nodes[reach])
        leg_start = nodes[reach]
        i = reach + 1
    if not waypoints or waypoints[-1] != dst:
        waypoints.append(dst)
    return waypoints


def tree_parents(
    ports_by_node: dict[Node, set[int]], order: list[Node],
) -> dict[Node, Optional[Node]]:
    """Parent of each tree node (None at the source)."""
    from repro.core.ports import DISPLACEMENT

    parents: dict[Node, Optional[Node]] = {order[0]: None}
    for node in order:
        for port in ports_by_node.get(node, ()):
            if port == RECEPTION:
                continue
            dx, dy = DISPLACEMENT[port]
            child = (node[0] + dx, node[1] + dy)
            if child in ports_by_node and child not in parents:
                parents[child] = node
    return parents


def route_length(route: list[Hop]) -> int:
    """Number of link traversals in a unicast route."""
    return sum(1 for __, port in route if port != RECEPTION)


class RouteError(RuntimeError):
    """No route exists under the given constraints."""


def shortest_route_avoiding(
    width: int, height: int, src: Node, dst: Node,
    failed: set[Hop], torus: bool = False,
) -> list[Hop]:
    """Shortest path in a mesh that avoids failed links.

    Time-constrained routing is table-driven, so a channel may follow
    *any* path the protocol software programs — not just dimension
    order.  This is the fault-recovery routing of the paper's
    introduction ("several disjoint routes between each pair of
    processing nodes, improving the application's resilience to link
    and node failures"): breadth-first search over the mesh excluding
    the failed ``(node, out_port)`` links.  Raises :class:`RouteError`
    when the destination is unreachable.
    """
    from collections import deque as _deque

    from repro.core.ports import DISPLACEMENT

    if (dst, RECEPTION) in failed:
        raise RouteError(f"reception port at {dst!r} is failed")
    parents: dict[Node, Optional[Hop]] = {src: None}
    frontier = _deque([src])
    while frontier:
        node = frontier.popleft()
        if node == dst:
            break
        for port, (dx, dy) in DISPLACEMENT.items():
            if (node, port) in failed:
                continue
            nxt = (node[0] + dx, node[1] + dy)
            if torus:
                nxt = (nxt[0] % width, nxt[1] % height)
            elif not (0 <= nxt[0] < width and 0 <= nxt[1] < height):
                continue
            if nxt in parents:
                continue
            parents[nxt] = (node, port)
            frontier.append(nxt)
    if dst not in parents:
        raise RouteError(
            f"no route from {src!r} to {dst!r} avoiding {len(failed)} "
            "failed links"
        )
    hops: list[Hop] = [(dst, RECEPTION)]
    node = dst
    while parents[node] is not None:
        hop = parents[node]
        hops.append(hop)
        node = hop[0]
    hops.reverse()
    return hops
