"""The control-plane service controller.

Wraps the channel software (:class:`~repro.channels.manager.ChannelManager`
and :class:`~repro.channels.admission.AdmissionController`) with the
policies a long-running router needs under churn:

* **Preventive admission** — beyond the hard EDF/buffer feasibility
  tests, a setup is only attempted while projected occupancy stays
  under configurable headroom thresholds (link utilisation, packet-
  memory watermark), keeping slack for flows already admitted.
* **Queue-with-deadline** — requests that cannot be placed immediately
  are parked in a bounded queue and retried with exponential backoff;
  a request that exhausts its retries or its queueing deadline is
  demoted to best-effort (lowest criticality only) or rejected.
* **Graceful teardown** — an expiring flow first stops sending, and
  its guaranteed-service state is released only after its end-to-end
  deadline (plus a margin) has passed, so in-flight messages are never
  orphaned by a table invalidation.

Overload entry/exit is delegated to
:class:`~repro.service.overload.OverloadManager`; every decision is
counted, traced (``setup_*`` events) and exported through the metrics
registry as ``service.*`` probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.channels.admission import AdmissionError
from repro.channels.routing import dimension_ordered_route
from repro.channels.spec import TrafficSpec
from repro.observability.trace import (
    CHANNEL_TEARDOWN,
    SETUP_ACCEPT,
    SETUP_DEMOTE,
    SETUP_QUEUE,
    SETUP_REJECT,
    SETUP_REQUEST,
)
from repro.service.workload import ChannelRequest

#: Setup-latency histogram bucket bounds (ticks from request arrival
#: to acceptance; immediate acceptance lands in the first bucket).
SETUP_LATENCY_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Every decision counter the controller keeps (and exports as
#: ``service.<name>`` probes).  Fixed so reports and checkpoints have
#: a stable schema.
COUNTER_NAMES = (
    "requests_total", "tc_requests", "be_requests",
    "accepted_tc", "accepted_be", "rejected",
    "queued_total", "queue_timeouts", "retries_total",
    "demoted_setup", "demoted_overload", "be_shed",
    "teardowns", "flows_completed",
)


@dataclass(frozen=True)
class ServiceConfig:
    """Thresholds and limits governing the service's decisions.

    ``util_threshold`` / ``buffer_watermark`` are *preventive* caps —
    fractions of link schedulability and node packet memory the service
    is willing to fill before it starts queueing — deliberately below
    the hard feasibility bounds admission control enforces.  The
    overload hysteresis points are derived: overload is entered when
    the setup queue reaches ``queue_high`` and left once it drains to
    ``queue_low`` *and* peak link utilisation is back under
    ``util_exit``.
    """

    util_threshold: float = 0.90
    buffer_watermark: float = 0.90
    queue_limit: int = 16
    queue_timeout_ticks: int = 64
    max_retries: int = 3
    retry_backoff_ticks: int = 4
    teardown_margin_ticks: int = 4
    #: Consult the analytic schedulability engine before the headroom
    #: ladder: a request whose infeasibility is load-independent (bad
    #: deadline, hop overhead, rollover — nothing queueing can fix) is
    #: rejected immediately instead of burning queue slots and retries.
    analytic_preadmission: bool = False
    #: Optional fault-aware screen: a :class:`~repro.faults.plan.FaultPlan`
    #: the operator expects the fabric to survive.  Requests the fault
    #: model leaves *at risk* under this plan even on an idle fabric
    #: (no disjoint reroute path, retry budget exhausted) are rejected
    #: at intake — the service never promises a guarantee the recovery
    #: layer could not keep.
    fault_plan: Optional[object] = None

    def validate(self) -> None:
        if not 0.0 < self.util_threshold <= 1.0:
            raise ValueError(
                f"utilisation threshold must be in (0, 1], "
                f"got {self.util_threshold}")
        if not 0.0 < self.buffer_watermark <= 1.0:
            raise ValueError(
                f"buffer watermark must be in (0, 1], "
                f"got {self.buffer_watermark}")
        if self.queue_limit < 1:
            raise ValueError("queue limit must be at least 1")
        if self.queue_timeout_ticks < 1:
            raise ValueError("queue timeout must be at least one tick")
        if self.max_retries < 0:
            raise ValueError("max retries cannot be negative")
        if self.retry_backoff_ticks < 1:
            raise ValueError("retry backoff must be at least one tick")
        if self.teardown_margin_ticks < 0:
            raise ValueError("teardown margin cannot be negative")

    @property
    def queue_high(self) -> int:
        return max(1, (3 * self.queue_limit) // 4)

    @property
    def queue_low(self) -> int:
        return self.queue_limit // 4

    @property
    def util_exit(self) -> float:
        return max(0.0, self.util_threshold - 0.15)


@dataclass
class Flow:
    """One active (sending) flow the service placed on the fabric."""

    index: int
    traffic_class: str      # effective class: "TC" or "BE"
    admitted_tick: int
    end_tick: int           # first tick the flow no longer sends
    teardown_tick: int      # when channel state is released (TC)
    demoted: bool = False   # demoted at setup or during overload
    sequence: int = 0       # best-effort send sequence numbers

    @property
    def label(self) -> str:
        return f"svc-{self.index}"


@dataclass
class _QueueEntry:
    index: int
    enqueued_tick: int
    attempts: int
    next_retry_tick: int


class ServiceController:
    """Admission policy, retry queue and flow lifecycle for one run."""

    def __init__(self, network, requests: list[ChannelRequest],
                 config: ServiceConfig, overload) -> None:
        config.validate()
        self.network = network
        self.requests = requests
        self.config = config
        self.overload = overload
        self.counters: dict[str, int] = {name: 0
                                         for name in COUNTER_NAMES}
        self.reject_reasons: dict[str, int] = {}
        #: Structured :class:`AdmissionError` reasons behind every
        #: failed establishment attempt (including analytic
        #: pre-admission verdicts) — distinct from ``reject_reasons``,
        #: which tallies the service's own final decisions.
        self.admission_reject_reasons: dict[str, int] = {}
        self.flows: dict[str, Flow] = {}
        self._queue: list[_QueueEntry] = []
        #: Memoised fault-screen verdicts (pure in the request shape).
        self._fault_screen: dict[tuple, Optional[str]] = {}
        #: Labels of every TC channel the service admitted (kept after
        #: teardown: SLO accounting needs the full-population set).
        self.tc_labels: list[str] = []
        #: Labels whose guarantee was withdrawn (setup demotion or
        #: overload demotion) — excluded from guaranteed-miss SLOs.
        self.demoted_labels: list[str] = []
        self.peak_queue_depth = 0
        self.peak_link_utilisation = 0.0
        self.setup_latency = network.metrics.histogram(
            "service.setup_latency_ticks", SETUP_LATENCY_BUCKETS)
        self._register_metrics()

    # -- metrics -----------------------------------------------------------

    def _register_metrics(self) -> None:
        registry = self.network.metrics

        def counter_probe(name: str):
            return lambda: self.counters[name]

        for name in COUNTER_NAMES:
            registry.register_probe(f"service.{name}",
                                    counter_probe(name))
        registry.register_probe("service.queue_depth",
                                lambda: len(self._queue))
        registry.register_probe("service.flows_active",
                                lambda: len(self.flows))
        registry.register_probe("service.in_overload",
                                lambda: int(self.overload.active))
        registry.register_probe("service.time_in_overload_ticks",
                                lambda: self.overload.time_in_overload)
        registry.register_probe("service.overload_entries",
                                lambda: self.overload.entries)

    def _trace(self, event: str, label: Optional[str],
               info: Optional[dict] = None) -> None:
        tracer = self.network.tracer
        if tracer is not None:
            tracer.emit(self.network.cycle, event, label=label,
                        info=info)

    # -- request intake ----------------------------------------------------

    def submit(self, request: ChannelRequest, tick: int) -> str:
        """Decide one arriving request; returns the decision name."""
        self.counters["requests_total"] += 1
        if request.traffic_class == "BE":
            self.counters["be_requests"] += 1
        else:
            self.counters["tc_requests"] += 1
        self._trace(SETUP_REQUEST, request.label,
                    info={"class": request.traffic_class})
        if request.traffic_class == "BE":
            if self.overload.active:
                return self._reject(request, "overload-shed")
            self._activate_be(request, tick, demoted=False)
            return "accepted"
        if self.overload.active:
            return self._enqueue(request, tick, "overload")
        reason = self._preadmission_reason(request)
        if reason is not None:
            return self._reject(request, reason)
        if not self._headroom_ok(request):
            return self._enqueue(request, tick, "headroom")
        reason = self._try_establish(request, tick)
        if reason is None:
            return "accepted"
        return self._enqueue(request, tick, reason)

    def _preadmission_reason(self, request: ChannelRequest
                             ) -> Optional[str]:
        """The analytic verdict's reason iff the request can *never*
        be admitted (load-independent infeasibility), else ``None``.

        Load-dependent verdicts fall through to the normal ladder —
        load changes as flows retire, so queueing may still win; the
        eventual failure is tallied by :meth:`_try_establish`.  With a
        configured ``fault_plan``, requests the fault model leaves at
        risk under that plan are rejected here too.
        """
        reason = None
        if self.config.analytic_preadmission:
            from repro.channels.spec import FlowRequirements
            from repro.schedulability.engine import predict_admission

            manager = self.network.manager
            route = dimension_ordered_route(request.source,
                                            request.destination)
            verdict = predict_admission(
                manager.admission, manager._hop_descriptors(route),
                TrafficSpec(i_min=request.i_min),
                FlowRequirements(deadline=request.deadline_ticks))
            if not verdict["feasible"] and verdict["load_independent"]:
                reason = verdict["reason"]
        if reason is None and self.config.fault_plan is not None:
            reason = self._fault_screen_reason(request)
        if reason is not None:
            self.admission_reject_reasons[reason] = (
                self.admission_reject_reasons.get(reason, 0) + 1)
        return reason

    def _fault_screen_reason(self, request: ChannelRequest
                             ) -> Optional[str]:
        """Static fault screen against the configured plan.

        Analyses the request as a lone channel on an idle fabric under
        ``config.fault_plan``; an at-risk verdict (no surviving reroute
        path, retry budget exhausted) means no amount of queueing or
        load decay can ever make the guarantee survivable, so the
        request is rejected outright.  Verdicts are load-independent by
        construction and cached per ``(source, destination, i_min,
        deadline)``.
        """
        key = (request.source, request.destination, request.i_min,
               request.deadline_ticks)
        if key not in self._fault_screen:
            from repro.schedulability import ChannelDemand, TopologySpec
            from repro.schedulability.faultmodel import analyze_with_faults

            mesh = self.network.mesh
            demand = ChannelDemand(
                label="candidate", source=request.source,
                destinations=(request.destination,),
                i_min=request.i_min, deadline=request.deadline_ticks)
            report = analyze_with_faults(
                TopologySpec(mesh.width, mesh.height, torus=mesh.torus),
                [demand], self.config.fault_plan)
            at_risk = report.at_risk
            self._fault_screen[key] = (
                f"fault-at-risk-{at_risk[0].reason}" if at_risk
                else None)
        return self._fault_screen[key]

    def _headroom_ok(self, request: ChannelRequest) -> bool:
        """Preventive check: would this setup breach the thresholds?"""
        spec = TrafficSpec(i_min=request.i_min)
        candidate_util = spec.packets_per_message / spec.i_min
        admission = self.network.manager.admission
        capacity = admission.params.tc_packet_slots
        route = dimension_ordered_route(request.source,
                                        request.destination)
        for node, port in route:
            current = admission.link_utilisation(node, port)
            if current + candidate_util > self.config.util_threshold:
                return False
            fill = admission.node_buffer_usage(node) / capacity
            if fill > self.config.buffer_watermark:
                return False
        return True

    def _try_establish(self, request: ChannelRequest,
                       tick: int) -> Optional[str]:
        """Attempt the setup; returns ``None`` on success, else the
        structured rejection reason."""
        spec = TrafficSpec(i_min=request.i_min)
        try:
            self.network.establish_channel(
                request.source, request.destination, spec,
                deadline=request.deadline_ticks,
                label=request.label, adaptive=False,
            )
        except AdmissionError as exc:
            self.admission_reject_reasons[exc.reason] = (
                self.admission_reject_reasons.get(exc.reason, 0) + 1)
            return exc.reason
        self._activate_tc(request, tick)
        return None

    # -- activation / retirement ------------------------------------------

    def _activate_tc(self, request: ChannelRequest, tick: int) -> None:
        self.counters["accepted_tc"] += 1
        self.tc_labels.append(request.label)
        self.setup_latency.observe(max(0, tick - request.arrival_tick))
        end = tick + request.hold_ticks
        self.flows[request.label] = Flow(
            index=request.index, traffic_class="TC",
            admitted_tick=tick, end_tick=end,
            teardown_tick=(end + request.deadline_ticks
                           + self.config.teardown_margin_ticks),
        )
        self._trace(SETUP_ACCEPT, request.label,
                    info={"wait_ticks": tick - request.arrival_tick})

    def _activate_be(self, request: ChannelRequest, tick: int, *,
                     demoted: bool) -> None:
        if demoted:
            self.counters["demoted_setup"] += 1
            self.demoted_labels.append(request.label)
            self._trace(SETUP_DEMOTE, request.label,
                        info={"stage": "setup"})
        else:
            self.counters["accepted_be"] += 1
            self.setup_latency.observe(
                max(0, tick - request.arrival_tick))
            self._trace(SETUP_ACCEPT, request.label,
                        info={"class": "BE"})
        end = tick + request.hold_ticks
        self.flows[request.label] = Flow(
            index=request.index, traffic_class="BE",
            admitted_tick=tick, end_tick=end, teardown_tick=end,
            demoted=demoted,
        )

    def _reject(self, request: ChannelRequest, reason: str) -> str:
        self.counters["rejected"] += 1
        self.reject_reasons[reason] = (
            self.reject_reasons.get(reason, 0) + 1)
        self._trace(SETUP_REJECT, request.label,
                    info={"reason": reason})
        return "rejected"

    def _enqueue(self, request: ChannelRequest, tick: int,
                 reason: str) -> str:
        if len(self._queue) >= self.config.queue_limit:
            return self._reject(request, "queue-full")
        self.counters["queued_total"] += 1
        self._queue.append(_QueueEntry(
            index=request.index, enqueued_tick=tick, attempts=0,
            next_retry_tick=tick + self.config.retry_backoff_ticks,
        ))
        self._trace(SETUP_QUEUE, request.label,
                    info={"reason": reason,
                          "depth": len(self._queue)})
        return "queued"

    # -- the per-tick service loop ----------------------------------------

    def advance(self, tick: int) -> None:
        """One service tick: retries, expiries, overload management."""
        self._retry_queue(tick)
        self._retire_flows(tick)
        occupancy = self.network.manager.admission.occupancy()
        self.peak_queue_depth = max(self.peak_queue_depth,
                                    len(self._queue))
        self.peak_link_utilisation = max(
            self.peak_link_utilisation,
            occupancy["max_link_utilisation"])
        self.overload.update(tick, len(self._queue), occupancy, self)

    def _retry_queue(self, tick: int) -> None:
        remaining: list[_QueueEntry] = []
        for entry in self._queue:
            if entry.next_retry_tick > tick:
                remaining.append(entry)
                continue
            request = self.requests[entry.index]
            self.counters["retries_total"] += 1
            if (not self.overload.active
                    and self._headroom_ok(request)
                    and self._try_establish(request, tick) is None):
                continue
            entry.attempts += 1
            timed_out = (tick - entry.enqueued_tick
                         >= self.config.queue_timeout_ticks)
            if timed_out or entry.attempts > self.config.max_retries:
                self.counters["queue_timeouts"] += 1
                if request.criticality == 0 and not self.overload.active:
                    self._activate_be(request, tick, demoted=True)
                else:
                    self._reject(request, "queue-timeout")
                continue
            entry.next_retry_tick = tick + (
                self.config.retry_backoff_ticks * (2 ** entry.attempts))
            remaining.append(entry)
        self._queue = remaining

    def _retire_flows(self, tick: int) -> None:
        manager = self.network.manager
        for label in [label for label, flow in self.flows.items()
                      if tick >= flow.teardown_tick]:
            flow = self.flows.pop(label)
            if flow.traffic_class == "TC":
                if manager.teardown_label(label):
                    self.counters["teardowns"] += 1
                    self._trace(CHANNEL_TEARDOWN, label)
                # A channel demoted during overload has no guaranteed
                # state left; drop the degraded handle instead.
                manager.forget_degraded(label)
            self.counters["flows_completed"] += 1

    # -- overload callbacks ------------------------------------------------

    def shed_best_effort(self, tick: int) -> int:
        """Drop every active best-effort flow (overload entry)."""
        shed = [label for label, flow in self.flows.items()
                if flow.traffic_class == "BE"]
        for label in shed:
            self.flows.pop(label)
            self.network.manager.forget_degraded(label)
            self.counters["be_shed"] += 1
            self.counters["flows_completed"] += 1
        return len(shed)

    def demote_lowest_criticality(self, tick: int,
                                  util_exit: float) -> int:
        """Demote admitted TC channels, least critical first, until
        peak link utilisation is back under ``util_exit``."""
        admission = self.network.manager.admission
        candidates = sorted(
            (flow for flow in self.flows.values()
             if flow.traffic_class == "TC" and not flow.demoted),
            key=lambda flow: (self.requests[flow.index].criticality,
                              flow.admitted_tick, flow.index),
        )
        demoted = 0
        for flow in candidates:
            occupancy = admission.occupancy()
            if occupancy["max_link_utilisation"] <= util_exit:
                break
            channel = self.network.manager.find(flow.label)
            if channel is None or channel.degraded:
                continue
            # Only demote flows actually crossing an over-threshold
            # link; demoting elsewhere would shed guarantees without
            # relieving the contention.
            if not any(admission.link_utilisation(hop.node, hop.out_port)
                       > util_exit
                       for hop in channel.reservation.hops):
                continue
            self.network.manager.degrade(channel)
            flow.demoted = True
            self.demoted_labels.append(flow.label)
            self.counters["demoted_overload"] += 1
            self._trace(SETUP_DEMOTE, flow.label,
                        info={"stage": "overload"})
            demoted += 1
        return demoted

    # -- driving helpers ---------------------------------------------------

    def due_sends(self, tick: int) -> list[Flow]:
        """Flows that send a message at ``tick`` (insertion order)."""
        return [
            flow for flow in self.flows.values()
            if (flow.admitted_tick <= tick < flow.end_tick
                and (tick - flow.admitted_tick) % (
                    self.requests[flow.index].i_min) == 0)
        ]

    @property
    def idle(self) -> bool:
        """No queued setups and no flows left to drive or retire."""
        return not self._queue and not self.flows

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- checkpointing -----------------------------------------------------

    def state(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "reject_reasons": dict(sorted(self.reject_reasons.items())),
            "admission_reject_reasons": dict(sorted(
                self.admission_reject_reasons.items())),
            "queue": [[entry.index, entry.enqueued_tick, entry.attempts,
                       entry.next_retry_tick]
                      for entry in self._queue],
            "flows": [[flow.index, flow.traffic_class,
                       flow.admitted_tick, flow.end_tick,
                       flow.teardown_tick, flow.demoted, flow.sequence]
                      for flow in self.flows.values()],
            "tc_labels": list(self.tc_labels),
            "demoted_labels": list(self.demoted_labels),
            "peak_queue_depth": self.peak_queue_depth,
            "peak_link_utilisation": self.peak_link_utilisation,
            "overload": self.overload.state(),
        }

    def load_state(self, state: dict) -> None:
        self.counters = {name: int(state["counters"].get(name, 0))
                         for name in COUNTER_NAMES}
        self.reject_reasons = {str(reason): int(count) for reason, count
                               in state["reject_reasons"].items()}
        self.admission_reject_reasons = {
            str(reason): int(count) for reason, count
            in state.get("admission_reject_reasons", {}).items()}
        self._queue = [
            _QueueEntry(index=index, enqueued_tick=enqueued,
                        attempts=attempts, next_retry_tick=retry)
            for index, enqueued, attempts, retry in state["queue"]
        ]
        self.flows = {}
        for (index, traffic_class, admitted, end, teardown,
             demoted, sequence) in state["flows"]:
            flow = Flow(index=int(index), traffic_class=traffic_class,
                        admitted_tick=int(admitted), end_tick=int(end),
                        teardown_tick=int(teardown),
                        demoted=bool(demoted), sequence=int(sequence))
            self.flows[flow.label] = flow
        self.tc_labels = [str(label) for label in state["tc_labels"]]
        self.demoted_labels = [str(label)
                               for label in state["demoted_labels"]]
        self.peak_queue_depth = int(state["peak_queue_depth"])
        self.peak_link_utilisation = float(
            state["peak_link_utilisation"])
        self.overload.load_state(state["overload"])
