"""Control-plane service layer: churn, overload, graceful degradation.

The paper splits the router into a hard-real-time data path and a
software control plane driven through the four-write control interface
(section 4.1).  This package models that control plane as a
*long-running service*: a seeded churn workload issues channel
setup/teardown requests continuously, a service controller decides
each one against occupancy thresholds (accept / reject / queue with
bounded retry / demote to best-effort), an overload manager sheds load
gracefully and recovers hysteretically, and the outcome is reduced to
an :class:`~repro.service.slo.SLOReport` with a stable signature.

Entry points:

* :func:`~repro.service.session.run_service` — run one configured
  service workload to completion.
* :class:`~repro.service.session.ServiceSession` — the checkpointable
  driving loop (``repro-router service --resume-from`` uses it).
* the ``churn`` campaign workload (:mod:`repro.campaign.workloads`) —
  threshold sweeps over grids of
  :class:`~repro.service.session.ServiceRunConfig` parameters.
"""

from repro.service.controller import (
    COUNTER_NAMES,
    SETUP_LATENCY_BUCKETS,
    Flow,
    ServiceConfig,
    ServiceController,
)
from repro.service.overload import OverloadManager
from repro.service.session import (
    ServiceRunConfig,
    ServiceSession,
    open_service_session,
    run_service,
)
from repro.service.slo import SLOReport, build_slo_report
from repro.service.workload import ChannelRequest, ChurnWorkload

__all__ = [
    "COUNTER_NAMES",
    "ChannelRequest",
    "ChurnWorkload",
    "Flow",
    "OverloadManager",
    "SETUP_LATENCY_BUCKETS",
    "SLOReport",
    "ServiceConfig",
    "ServiceController",
    "ServiceRunConfig",
    "ServiceSession",
    "build_slo_report",
    "open_service_session",
    "run_service",
]
