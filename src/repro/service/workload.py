"""Seeded channel-churn request streams.

A long-running router does not see one static channel set: connections
arrive, hold, and leave continuously.  :class:`ChurnWorkload` models
that as a deterministic request stream — Poisson arrivals (exponential
inter-arrival times), heavy-tailed holding times (truncated Pareto,
matching the long-lived-flow skew real traffic shows), and a
configurable mix of time-constrained and best-effort requests.

Everything is derived from one seed through
:func:`~repro.campaign.spec.derive_seed`, so the identical parameter
bundle always yields the identical request list, in any process.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.campaign.spec import derive_seed
from repro.network.topology import Mesh, Node

#: Message-spacing choices (ticks) sampled per request, mirroring the
#: random admitted workload's mix.
I_MIN_CHOICES = (6, 10, 16, 24)

#: Pareto shape for holding times: alpha < 2 gives the heavy tail
#: (a few connections hold much longer than the mean).
HOLD_ALPHA = 1.5

#: Holding times are truncated at this multiple of the configured mean
#: so a single sample cannot dominate a run's length.
HOLD_CAP_FACTOR = 8


@dataclass(frozen=True)
class ChannelRequest:
    """One channel-setup request as the service sees it arrive."""

    index: int
    arrival_tick: int
    source: Node
    destination: Node
    traffic_class: str      # "TC" or "BE"
    i_min: int              # message spacing, ticks
    deadline_ticks: int     # requested end-to-end bound (TC)
    hold_ticks: int         # how long the flow sends before leaving
    criticality: int        # 0 (sheddable) .. 3 (protect hardest)

    @property
    def label(self) -> str:
        return f"svc-{self.index}"


class ChurnWorkload:
    """Deterministic setup/teardown request stream for one mesh."""

    def __init__(self, width: int, height: int, requests: int,
                 seed: int, *,
                 arrival_period_ticks: int = 4,
                 hold_ticks: int = 200,
                 be_fraction: float = 0.25) -> None:
        if requests < 1:
            raise ValueError("churn workload needs at least one request")
        if arrival_period_ticks < 1:
            raise ValueError("arrival period must be at least one tick")
        if hold_ticks < 1:
            raise ValueError("mean holding time must be positive")
        if not 0.0 <= be_fraction <= 1.0:
            raise ValueError("best-effort fraction must be within [0, 1]")
        self.width = width
        self.height = height
        self.count = requests
        self.seed = seed
        self.arrival_period_ticks = arrival_period_ticks
        self.hold_ticks = hold_ticks
        self.be_fraction = be_fraction
        self.requests = self._generate()

    def _generate(self) -> list[ChannelRequest]:
        rng = random.Random(derive_seed(self.seed, "churn"))
        mesh = Mesh(self.width, self.height)
        nodes = list(mesh.nodes())
        cap = self.hold_ticks * HOLD_CAP_FACTOR
        requests: list[ChannelRequest] = []
        clock = 0.0
        for index in range(self.count):
            clock += rng.expovariate(1.0 / self.arrival_period_ticks)
            src, dst = rng.sample(nodes, 2)
            traffic_class = ("BE" if rng.random() < self.be_fraction
                             else "TC")
            i_min = rng.choice(I_MIN_CHOICES)
            hops = mesh.hop_distance(src, dst) + 1
            deadline = i_min * hops + rng.randrange(0, 2 * i_min)
            # Truncated Pareto: mean of paretovariate(a) is a/(a-1),
            # so rescale to the configured mean before capping.
            scale = self.hold_ticks * (HOLD_ALPHA - 1) / HOLD_ALPHA
            hold = min(cap, max(i_min, round(
                scale * rng.paretovariate(HOLD_ALPHA))))
            requests.append(ChannelRequest(
                index=index,
                arrival_tick=int(clock),
                source=src,
                destination=dst,
                traffic_class=traffic_class,
                i_min=i_min,
                deadline_ticks=deadline,
                hold_ticks=int(hold),
                criticality=rng.randrange(4),
            ))
        return requests

    def arrivals_at(self, tick: int) -> list[ChannelRequest]:
        """Requests arriving exactly at ``tick`` (ordered by index)."""
        return [request for request in self.requests
                if request.arrival_tick == tick]

    @property
    def last_arrival_tick(self) -> int:
        return self.requests[-1].arrival_tick

    def signature_payload(self) -> dict:
        """The generation parameters, for fingerprinting runs."""
        return {
            "width": self.width,
            "height": self.height,
            "requests": self.count,
            "seed": self.seed,
            "arrival_period_ticks": self.arrival_period_ticks,
            "hold_ticks": self.hold_ticks,
            "be_fraction": self.be_fraction,
        }
