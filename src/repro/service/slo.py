"""Service-level-objective reporting for churn runs.

The :class:`SLOReport` reduces one service run to the numbers an
operator would alert on: accept/reject/demote rates, setup-latency
percentiles, the deadline-miss rate of *guaranteed* (admitted,
never-demoted) time-constrained traffic, and how long the service
spent in overload.  The report is canonical JSON throughout —
identical runs produce byte-identical reports — and carries a stable
SHA-256 signature the determinism tests compare across fresh,
resumed, and spawned-worker executions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.campaign.spec import canonical_dumps
from repro.observability.registry import Histogram


@dataclass
class SLOReport:
    """Outcome of one control-plane service run."""

    seed: int
    cycles: int
    workload: dict                  # churn generation parameters
    # Intake.
    requests_total: int
    tc_requests: int
    be_requests: int
    # Decisions.
    accepted_tc: int
    accepted_be: int
    rejected: int
    reject_reasons: dict
    queued_total: int
    queue_timeouts: int
    retries_total: int
    demoted_setup: int
    demoted_overload: int
    be_shed: int
    teardowns: int
    flows_completed: int
    # Setup latency (ticks; full histogram state + headline summary).
    setup_latency: dict
    setup_latency_summary: dict
    # Data-plane outcome for admitted traffic.
    tc_delivered_total: int
    tc_misses_total: int
    tc_delivered_guaranteed: int
    tc_misses_guaranteed: int
    be_delivered: int
    # Overload accounting.
    time_in_overload_ticks: int
    overload_entries: int
    in_overload_at_end: bool
    peak_queue_depth: int
    peak_link_utilisation: float
    demoted_labels: list = field(default_factory=list)
    #: Structured AdmissionError reasons behind failed establishment
    #: attempts (audit trail; distinct from ``reject_reasons``, the
    #: service's own final decisions).
    admission_reject_reasons: dict = field(default_factory=dict)

    @property
    def accept_rate(self) -> float:
        """Fraction of requests that ended up with *some* service
        (guaranteed or demoted best-effort)."""
        if not self.requests_total:
            return 0.0
        served = (self.accepted_tc + self.accepted_be
                  + self.demoted_setup)
        return served / self.requests_total

    @property
    def guaranteed_miss_rate(self) -> float:
        if not self.tc_delivered_guaranteed:
            return 0.0
        return self.tc_misses_guaranteed / self.tc_delivered_guaranteed

    @property
    def ok(self) -> bool:
        """The SLO bar: every guaranteed delivery met its deadline and
        the service was out of overload by the end of the run."""
        return (self.tc_misses_guaranteed == 0
                and not self.in_overload_at_end)

    def as_dict(self) -> dict:
        """The report as a canonical, JSON-serialisable dictionary."""
        return {
            "seed": self.seed,
            "cycles": self.cycles,
            "workload": dict(sorted(self.workload.items())),
            "requests_total": self.requests_total,
            "tc_requests": self.tc_requests,
            "be_requests": self.be_requests,
            "accepted_tc": self.accepted_tc,
            "accepted_be": self.accepted_be,
            "rejected": self.rejected,
            "reject_reasons": dict(sorted(self.reject_reasons.items())),
            "admission_reject_reasons": dict(sorted(
                self.admission_reject_reasons.items())),
            "queued_total": self.queued_total,
            "queue_timeouts": self.queue_timeouts,
            "retries_total": self.retries_total,
            "demoted_setup": self.demoted_setup,
            "demoted_overload": self.demoted_overload,
            "be_shed": self.be_shed,
            "teardowns": self.teardowns,
            "flows_completed": self.flows_completed,
            "accept_rate": round(self.accept_rate, 6),
            "setup_latency": self.setup_latency,
            "setup_latency_summary": self.setup_latency_summary,
            "tc_delivered_total": self.tc_delivered_total,
            "tc_misses_total": self.tc_misses_total,
            "tc_delivered_guaranteed": self.tc_delivered_guaranteed,
            "tc_misses_guaranteed": self.tc_misses_guaranteed,
            "guaranteed_miss_rate": round(self.guaranteed_miss_rate, 6),
            "be_delivered": self.be_delivered,
            "time_in_overload_ticks": self.time_in_overload_ticks,
            "overload_entries": self.overload_entries,
            "in_overload_at_end": self.in_overload_at_end,
            "peak_queue_depth": self.peak_queue_depth,
            "peak_link_utilisation": round(
                self.peak_link_utilisation, 6),
            "demoted_labels": sorted(self.demoted_labels),
            "ok": self.ok,
        }

    def signature(self) -> str:
        """Stable digest of the whole report (determinism checks)."""
        return hashlib.sha256(
            canonical_dumps(self.as_dict()).encode()).hexdigest()

    def summary_rows(self) -> list[tuple[str, str]]:
        """Headline numbers as display rows (CLI output)."""
        latency = self.setup_latency_summary
        rows = [
            ("requests", str(self.requests_total)),
            ("accepted (TC/BE)",
             f"{self.accepted_tc}/{self.accepted_be}"),
            ("rejected", str(self.rejected)),
            ("demoted (setup/overload)",
             f"{self.demoted_setup}/{self.demoted_overload}"),
            ("accept rate", f"{self.accept_rate:.3f}"),
            ("guaranteed TC delivered",
             str(self.tc_delivered_guaranteed)),
            ("guaranteed deadline misses",
             str(self.tc_misses_guaranteed)),
            ("time in overload (ticks)",
             str(self.time_in_overload_ticks)),
            ("overload entries", str(self.overload_entries)),
        ]
        if latency.get("count"):
            rows.append(("setup latency p50/p99 (ticks)",
                         f"{latency['p50']:.0f}/{latency['p99']:.0f}"))
        return rows


def build_slo_report(controller, network, workload_payload: dict,
                     seed: int) -> SLOReport:
    """Assemble the report from a finished run's components."""
    counters = controller.counters
    demoted = set(controller.demoted_labels)
    guaranteed = set(controller.tc_labels) - demoted
    tc_delivered_total = tc_misses_total = 0
    tc_delivered_guaranteed = tc_misses_guaranteed = 0
    be_delivered = 0
    for record in network.log.records:
        label = record.connection_label
        if label is None or not label.startswith("svc-"):
            continue
        if record.duplicate:
            continue
        if record.traffic_class == "BE":
            be_delivered += 1
            continue
        tc_delivered_total += 1
        missed = record.deadline_met is False
        if missed:
            tc_misses_total += 1
        if label in guaranteed:
            tc_delivered_guaranteed += 1
            if missed:
                tc_misses_guaranteed += 1
    histogram: Histogram = controller.setup_latency
    return SLOReport(
        seed=seed,
        cycles=network.cycle,
        workload=workload_payload,
        requests_total=counters["requests_total"],
        tc_requests=counters["tc_requests"],
        be_requests=counters["be_requests"],
        accepted_tc=counters["accepted_tc"],
        accepted_be=counters["accepted_be"],
        rejected=counters["rejected"],
        reject_reasons=dict(sorted(
            controller.reject_reasons.items())),
        admission_reject_reasons=dict(sorted(
            controller.admission_reject_reasons.items())),
        queued_total=counters["queued_total"],
        queue_timeouts=counters["queue_timeouts"],
        retries_total=counters["retries_total"],
        demoted_setup=counters["demoted_setup"],
        demoted_overload=counters["demoted_overload"],
        be_shed=counters["be_shed"],
        teardowns=counters["teardowns"],
        flows_completed=counters["flows_completed"],
        setup_latency=histogram.state(),
        setup_latency_summary=histogram.summary(),
        tc_delivered_total=tc_delivered_total,
        tc_misses_total=tc_misses_total,
        tc_delivered_guaranteed=tc_delivered_guaranteed,
        tc_misses_guaranteed=tc_misses_guaranteed,
        be_delivered=be_delivered,
        time_in_overload_ticks=controller.overload.time_in_overload,
        overload_entries=controller.overload.entries,
        in_overload_at_end=controller.overload.active,
        peak_queue_depth=controller.peak_queue_depth,
        peak_link_utilisation=controller.peak_link_utilisation,
        demoted_labels=sorted(demoted),
    )
