"""Hysteretic overload detection and graceful degradation.

The service enters *overload* when its setup queue backs up to the
``queue_high`` watermark — the sign that arrivals outpace what the
thresholds admit.  Entry triggers the degradation ladder, cheapest
guarantee first:

1. **shed best-effort** — active BE flows are dropped outright (they
   never held guarantees);
2. **demote lowest-criticality** — admitted TC channels are demoted to
   best-effort delivery via the recovery layer's demotion path
   (:meth:`~repro.channels.manager.ChannelManager.degrade`), least
   critical first, until peak link utilisation is back under the exit
   threshold.

Exit is **hysteretic**: overload only ends once the queue has drained
to ``queue_low`` *and* peak link utilisation is under ``util_exit`` —
strictly below the entry condition, so the service cannot flap in and
out on a single setup.
"""

from __future__ import annotations

from repro.observability.trace import OVERLOAD_ENTER, OVERLOAD_EXIT


class OverloadManager:
    """Tracks the overload state machine for one service run."""

    def __init__(self, network, config) -> None:
        self.network = network
        self.config = config
        self.active = False
        self.entries = 0
        self.time_in_overload = 0

    def update(self, tick: int, queue_depth: int, occupancy: dict,
               controller) -> None:
        """One tick of the state machine (called from the controller)."""
        if self.active:
            self.time_in_overload += 1
        if not self.active:
            if queue_depth >= self.config.queue_high:
                self.active = True
                self.entries += 1
                self._trace(OVERLOAD_ENTER,
                            {"queue_depth": queue_depth})
                controller.shed_best_effort(tick)
                controller.demote_lowest_criticality(
                    tick, self.config.util_exit)
            return
        if (queue_depth <= self.config.queue_low
                and occupancy["max_link_utilisation"]
                <= self.config.util_exit):
            self.active = False
            self._trace(OVERLOAD_EXIT,
                        {"time_in_overload": self.time_in_overload})

    def _trace(self, event: str, info: dict) -> None:
        tracer = self.network.tracer
        if tracer is not None:
            tracer.emit(self.network.cycle, event, info=info)

    # -- checkpointing -----------------------------------------------------

    def state(self) -> dict:
        return {
            "active": self.active,
            "entries": self.entries,
            "time_in_overload": self.time_in_overload,
        }

    def load_state(self, state: dict) -> None:
        self.active = bool(state["active"])
        self.entries = int(state["entries"])
        self.time_in_overload = int(state["time_in_overload"])
