"""The checkpointable service-run driving loop.

:class:`ServiceSession` is the serving counterpart of the chaos and
random-workload sessions: it owns the network, the churn request
stream, the :class:`~repro.service.controller.ServiceController` and
the :class:`~repro.service.overload.OverloadManager`, and drives them
tick by tick — submitting arrivals, running retries and expiries, and
sending messages for every active flow — with the spans split at
checkpoint cycles per the session segmentation rule.

Wall-clock control-plane time is accumulated separately
(:attr:`ServiceSession.control_plane_seconds`) so the benchmark can
bound the service layer's overhead; it is *not* part of the
deterministic state and never checkpoints.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Optional

from repro.checkpoint.codec import LoadContext, SaveContext
from repro.checkpoint.sessions import (
    DEFAULT_CHECKPOINT_INTERVAL,
    _SessionBase,
)
from repro.checkpoint.store import fingerprint_of
from repro.network.network import MeshNetwork
from repro.service.controller import ServiceConfig, ServiceController
from repro.service.overload import OverloadManager
from repro.service.slo import SLOReport, build_slo_report
from repro.service.workload import ChurnWorkload

#: Fixed payloads flows send (content never affects scheduling).
TC_PAYLOAD = b"\xa5" * 4
BE_PAYLOAD = b"\x5a" * 8


@dataclass(frozen=True)
class ServiceRunConfig:
    """Everything one service run needs, in one reproducible bundle.

    Percentages are integers (``90`` = 0.90) so campaign configs stay
    cleanly hashable; :meth:`service_config` converts.
    """

    seed: int = 1234
    width: int = 4
    height: int = 4
    requests: int = 200
    arrival_period_ticks: int = 4
    hold_ticks: int = 200
    be_fraction_pct: int = 25
    util_threshold_pct: int = 90
    buffer_watermark_pct: int = 90
    queue_limit: int = 16
    queue_timeout_ticks: int = 64
    max_retries: int = 3
    retry_backoff_ticks: int = 4
    #: Ask the analytic schedulability engine for a verdict before the
    #: headroom ladder; load-independent infeasibilities are rejected
    #: immediately (see :class:`~repro.service.controller.ServiceConfig`).
    analytic_preadmission: bool = False
    #: Optional fault-aware intake screen: a serialised
    #: :class:`~repro.faults.plan.FaultPlan` (JSON text, kept as a
    #: string so the config stays hashable).  Requests the fault model
    #: leaves at risk under this plan are rejected at intake (see
    #: :class:`~repro.service.controller.ServiceConfig`).
    fault_plan_json: Optional[str] = None
    #: Engine scheduling mode ("exact" or "event"); both produce
    #: byte-identical reports — "event" just skips idle work.
    engine: str = "exact"
    #: Worker processes the mesh is partitioned across (see
    #: ``docs/sharding.md``); 1 runs single-process.  Sharded runs
    #: produce byte-identical reports, so the count is excluded from
    #: the checkpoint fingerprint like the engine mode.
    shards: int = 1

    def validate(self) -> None:
        from repro.network.engine import ENGINE_MODES

        if self.engine not in ENGINE_MODES:
            raise ValueError(
                f"engine mode must be one of {ENGINE_MODES}, "
                f"got {self.engine!r}")
        if self.shards < 1:
            raise ValueError("shards must be positive")
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be positive")
        if self.requests < 1:
            raise ValueError("a service run needs at least one request")
        if not 0 <= self.be_fraction_pct <= 100:
            raise ValueError(
                f"best-effort fraction must be within [0, 100] percent, "
                f"got {self.be_fraction_pct}")
        if self.arrival_period_ticks < 1:
            raise ValueError("arrival period must be at least one tick")
        if self.hold_ticks < 1:
            raise ValueError("mean holding time must be positive")
        self.service_config().validate()

    def service_config(self) -> ServiceConfig:
        fault_plan = None
        if self.fault_plan_json is not None:
            from repro.faults.plan import FaultPlan

            fault_plan = FaultPlan.from_json(self.fault_plan_json)
        return ServiceConfig(
            util_threshold=self.util_threshold_pct / 100.0,
            buffer_watermark=self.buffer_watermark_pct / 100.0,
            queue_limit=self.queue_limit,
            queue_timeout_ticks=self.queue_timeout_ticks,
            max_retries=self.max_retries,
            retry_backoff_ticks=self.retry_backoff_ticks,
            analytic_preadmission=self.analytic_preadmission,
            fault_plan=fault_plan,
        )

    def churn_workload(self) -> ChurnWorkload:
        return ChurnWorkload(
            self.width, self.height, self.requests, self.seed,
            arrival_period_ticks=self.arrival_period_ticks,
            hold_ticks=self.hold_ticks,
            be_fraction=self.be_fraction_pct / 100.0,
        )


class ServiceSession(_SessionBase):
    """One control-plane service run under churn, checkpointable."""

    KIND = "service"

    def __init__(self, config: ServiceRunConfig, *,
                 check_every: int = 0, shard_world=None,
                 _restore: bool = False) -> None:
        config.validate()
        self.config = config
        self.check_every = check_every
        self.workload = config.churn_workload()
        self.network = MeshNetwork(config.width, config.height,
                                   on_memory_full="drop",
                                   engine=config.engine)
        if shard_world is not None:
            from repro.shard import install_shard_runtime

            install_shard_runtime(self.network, shard_world)
        # Churn tears channels down while packets can still be in
        # flight (overload demotion is deliberately immediate); those
        # packets must be counted and dropped, not crash the router.
        for router in self.network.routers.values():
            router.drop_unroutable = True
        self.overload = OverloadManager(self.network,
                                        config.service_config())
        self.controller = ServiceController(
            self.network, self.workload.requests,
            config.service_config(), self.overload)
        self.slot = self.network.params.slot_cycles
        self.invariant_failures: list[str] = []
        self.phase = "main"
        self.span_end = 0
        self.next_tick = 0
        self.next_request = 0
        self.next_check = check_every
        #: Wall-clock seconds spent inside control-plane calls (submit,
        #: advance, send dispatch).  Diagnostic only — never part of
        #: the checkpointed state or the report signature.
        self.control_plane_seconds = 0.0

    @classmethod
    def fingerprint_for(cls, config: ServiceRunConfig) -> str:
        """Pin of every input that shapes a service run's behaviour."""
        config_dict = asdict(config)
        # Both engine modes produce byte-identical runs, so the mode is
        # not behaviour-shaping: dropping it keeps fingerprints of
        # pre-existing checkpoints valid and lets a run checkpointed in
        # one mode resume in the other.  The shard count is excluded
        # for the same reason (sharded runs are byte-identical; see
        # docs/sharding.md).
        config_dict.pop("engine", None)
        config_dict.pop("shards", None)
        # The pre-admission verdict *is* behaviour-shaping when on, but
        # its default-off value is dropped so fingerprints of every
        # pre-existing checkpoint stay valid.  Same for the fault-aware
        # intake screen.
        if not config_dict.get("analytic_preadmission"):
            config_dict.pop("analytic_preadmission", None)
        if not config_dict.get("fault_plan_json"):
            config_dict.pop("fault_plan_json", None)
        return fingerprint_of({
            "workload": cls.KIND,
            "config": config_dict,
        })

    def fingerprint(self) -> str:
        return self.fingerprint_for(self.config)

    # -- driving ----------------------------------------------------------

    def run(self, *, store=None,
            interval: int = DEFAULT_CHECKPOINT_INTERVAL) -> SLOReport:
        """Run (or finish running) the service; returns the SLOReport."""
        self.attach_store(store, interval)
        net = self.network
        requests = self.workload.requests
        if net.cycle < self.span_end:
            self._run_span(self.span_end)
        if self.phase == "main":
            while (self.next_request < len(requests)
                   or not self.controller.idle):
                tick = self.next_tick
                started = time.perf_counter()
                while (self.next_request < len(requests)
                       and requests[self.next_request].arrival_tick
                       <= tick):
                    self.controller.submit(
                        requests[self.next_request], tick)
                    self.next_request += 1
                self.controller.advance(tick)
                due = self.controller.due_sends(tick)
                self.control_plane_seconds += (
                    time.perf_counter() - started)
                self._dispatch(due, tick)
                if self.check_every > 0 and net.cycle >= self.next_check:
                    self._check_invariants()
                    self.next_check += self.check_every
                self.next_tick = tick + 1
                self._run_span(net.cycle + self.slot)
            self.phase = "drain"
        if self.phase == "drain":
            net.drain(max_cycles=2_000_000)
            if self.check_every > 0:
                self._check_invariants()
            self.phase = "done"
        self._finalize_shard()
        return self.report()

    def _dispatch(self, flows, tick: int) -> None:
        """Send one message per due flow (data-plane hand-off)."""
        net = self.network
        for flow in flows:
            request = self.workload.requests[flow.index]
            if flow.traffic_class == "TC":
                channel = net.manager.find(flow.label)
                if channel is not None:
                    net.send_message(channel, payload=TC_PAYLOAD)
            else:
                net.send_best_effort(
                    request.source, request.destination,
                    payload=BE_PAYLOAD,
                    connection_label=flow.label,
                    sequence=flow.sequence,
                )
                flow.sequence += 1

    def report(self) -> SLOReport:
        return build_slo_report(
            self.controller, self.network,
            self.workload.signature_payload(), self.config.seed)

    # -- checkpointing -----------------------------------------------------

    def state(self) -> dict:
        ctx = SaveContext()
        state = {
            "phase": self.phase,
            "span_end": self.span_end,
            "next_tick": self.next_tick,
            "next_request": self.next_request,
            "next_check": self.next_check,
            "invariant_failures": list(self.invariant_failures),
            "controller": self.controller.state(),
            "network": self.network.state(ctx),
        }
        state["metas"] = ctx.metas_state()
        return state

    @classmethod
    def restore(cls, config: ServiceRunConfig, state: dict, *,
                check_every: int = 0,
                shard_world=None) -> "ServiceSession":
        session = cls(config, check_every=check_every,
                      shard_world=shard_world, _restore=True)
        ctx = LoadContext(state["metas"])
        session.network.load_state(state["network"], ctx)
        if session.network._shard is not None:
            session.network._shard.resync()
        session.controller.load_state(state["controller"])
        session.phase = state["phase"]
        session.span_end = state["span_end"]
        session.next_tick = state["next_tick"]
        session.next_request = state["next_request"]
        session.next_check = state["next_check"]
        session.invariant_failures = list(state["invariant_failures"])
        if session.check_every > 0:
            session._check_invariants()  # once after every restore
        return session


def run_service(config: ServiceRunConfig, *, store=None,
                interval: Optional[int] = None,
                check_every: int = 0) -> SLOReport:
    """Run one service churn workload and report its SLOs.

    Deterministic: the request stream, every control-plane decision and
    the simulation itself derive from ``config`` alone, so the same
    configuration always yields the identical report signature —
    including when ``config.shards`` partitions the run across worker
    processes (see ``docs/sharding.md``).
    """
    if config.shards > 1:
        from repro.shard import run_service_sharded

        return run_service_sharded(config, store=store,
                                   interval=interval,
                                   check_every=check_every)
    session = ServiceSession(config, check_every=check_every)
    return session.run(store=store,
                       interval=(DEFAULT_CHECKPOINT_INTERVAL
                                 if interval is None else interval))


def open_service_session(config: ServiceRunConfig, store, *,
                         check_every: int = 0) -> ServiceSession:
    """Resume from the store's latest checkpoint, or start fresh."""
    latest = store.latest()
    if latest is None:
        return ServiceSession(config, check_every=check_every)
    document = store.load(latest)
    return ServiceSession.restore(config, document["state"],
                                  check_every=check_every)
