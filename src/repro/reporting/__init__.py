"""Artefact rendering: tables, ASCII charts and CSV/JSONL export."""

from repro.reporting.ascii_chart import histogram, line_chart
from repro.reporting.export import (
    read_jsonl,
    read_series_csv,
    read_snapshots_jsonl,
    read_trace_jsonl,
    write_jsonl,
    write_log_csv,
    write_report_json,
    write_series_csv,
    write_snapshots_jsonl,
    write_trace_jsonl,
)
from repro.reporting.tables import format_kv, format_rate, format_table

__all__ = [
    "format_kv",
    "format_rate",
    "format_table",
    "histogram",
    "line_chart",
    "read_jsonl",
    "read_series_csv",
    "read_snapshots_jsonl",
    "read_trace_jsonl",
    "write_jsonl",
    "write_log_csv",
    "write_report_json",
    "write_series_csv",
    "write_snapshots_jsonl",
    "write_trace_jsonl",
]
