"""Terminal-friendly charts for experiment series.

The paper's Figure 7 is a set of cumulative-service curves; with no
plotting dependencies available, these renderers draw the same series
as ASCII so the benchmark artefacts are self-contained and diffable.
"""

from __future__ import annotations

from typing import Mapping, Sequence

Series = Sequence[tuple[float, float]]

_MARKS = "onxs+*#@"


def line_chart(series: Mapping[str, Series], *, width: int = 72,
               height: int = 20, title: str = "",
               x_label: str = "", y_label: str = "") -> list[str]:
    """Render labelled (x, y) series on one shared-axis ASCII chart.

    Later-plotted series overwrite earlier marks where they collide;
    a legend maps each label to its mark.
    """
    if not series:
        raise ValueError("nothing to plot")
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        raise ValueError("all series are empty")
    x_max = max(x for x, __ in points) or 1
    y_max = max(y for __, y in points) or 1

    grid = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in values:
            col = min(width - 1, int(x / x_max * (width - 1)))
            row = min(height - 1, int(y / y_max * (height - 1)))
            grid[height - 1 - row][col] = mark

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:g}"
    for row_index, row in enumerate(grid):
        prefix = top_label.rjust(8) if row_index == 0 else " " * 8
        lines.append(f"{prefix} |{''.join(row)}|")
    lines.append(" " * 8 + "+" + "-" * width + "+")
    lines.append(" " * 9 + "0" + f"{x_max:g}".rjust(width - 1))
    if x_label:
        lines.append(" " * 9 + x_label.center(width))
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} = {label}"
        for i, label in enumerate(series)
    )
    lines.append("legend: " + legend)
    if y_label:
        lines.insert(1 if title else 0, f"y: {y_label}")
    return lines


def histogram(values: Sequence[float], *, bins: int = 10,
              width: int = 50, title: str = "") -> list[str]:
    """A horizontal-bar histogram of a sample."""
    if not values:
        raise ValueError("nothing to plot")
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / span * bins))
        counts[index] += 1
    peak = max(counts) or 1
    lines = [title] if title else []
    for index, count in enumerate(counts):
        left = low + span * index / bins
        bar = "#" * round(count / peak * width)
        lines.append(f"{left:>10.1f} | {bar} {count}")
    return lines
