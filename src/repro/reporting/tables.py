"""Plain-text table rendering for experiment artefacts."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> list[str]:
    """Fixed-width table lines (right-aligned cells).

    Used by the benchmark artefacts so regenerated tables diff cleanly
    between runs.
    """
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(widths):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))

    return [line(list(headers)),
            line(["-" * width for width in widths])] + [
        line(row) for row in rendered
    ]


def format_rate(numerator: int, denominator: int,
                *, places: int = 4) -> str:
    """Render a ratio as a fixed-point rate cell; ``n/a`` on 0/0.

    Campaign summary tables report deadline-miss *rates*; a class with
    zero delivered packets has no meaningful rate (``n/a``), which is
    distinct from a true zero rate over delivered traffic.
    """
    if denominator == 0:
        return "n/a"
    return f"{numerator / denominator:.{places}f}"


def format_kv(pairs: Iterable[tuple[str, object]]) -> list[str]:
    """Aligned key/value listing (datasheet style)."""
    items = [(str(k), str(v)) for k, v in pairs]
    if not items:
        return []
    width = max(len(k) for k, __ in items)
    return [f"{k.ljust(width)}  {v}" for k, v in items]
