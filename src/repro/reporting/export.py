"""CSV/JSONL export of experiment series, delivery logs and traces."""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Iterable, Mapping, Sequence

from repro.network.stats import DeliveryLog

#: Trace-event keys holding node coordinates, which JSON flattens to
#: lists; :func:`read_trace_jsonl` restores them to tuples.
_NODE_KEYS = ("node",)


def write_series_csv(path: str | pathlib.Path,
                     series: Mapping[str, Sequence[tuple[float, float]]],
                     *, x_name: str = "x") -> pathlib.Path:
    """Write labelled (x, y) series as long-form CSV
    (columns: label, x, y)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["label", x_name, "value"])
        for label, values in series.items():
            for x, y in values:
                writer.writerow([label, x, y])
    return path


def write_log_csv(path: str | pathlib.Path,
                  log: DeliveryLog) -> pathlib.Path:
    """Write a delivery log's records as CSV."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([
            "class", "source", "destination", "connection", "sequence",
            "injected_cycle", "delivered_cycle", "latency_cycles",
            "deadline_ticks", "deadline_met",
        ])
        for record in log.records:
            writer.writerow([
                record.traffic_class, record.source, record.destination,
                record.connection_label, record.sequence,
                record.injected_cycle, record.delivered_cycle,
                record.latency_cycles, record.absolute_deadline,
                record.deadline_met,
            ])
    return path


def write_report_json(path: str | pathlib.Path,
                      report: Mapping[str, object]) -> pathlib.Path:
    """Write a report dictionary as pretty-printed, key-sorted JSON.

    Used by the ``analyze`` CLI subcommand for schedulability verdict
    exports; sorted keys keep the artefact diff-stable.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def write_jsonl(path: str | pathlib.Path,
                records: Iterable[Mapping[str, object]],
                *, canonical: bool = False) -> pathlib.Path:
    """Write record dicts as JSON Lines (one compact object per line).

    With ``canonical=True`` keys are sorted, making the output
    byte-stable for equal values — the encoding campaign result shards
    rely on for cache validation and determinism checks.  Without it,
    insertion order is kept (trace events preserve their field order).
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":"),
                                    sort_keys=canonical))
            handle.write("\n")
    return path


def read_jsonl(path: str | pathlib.Path) -> list[dict[str, object]]:
    """Inverse of :func:`write_jsonl` (blank lines skipped)."""
    with pathlib.Path(path).open() as handle:
        return [json.loads(line) for line in handle if line.strip()]


def write_trace_jsonl(path: str | pathlib.Path,
                      events: Iterable[Mapping[str, object]],
                      ) -> pathlib.Path:
    """Write packet-lifecycle trace events as JSON Lines.

    One event per line, keys in :data:`repro.observability.EVENT_FIELDS`
    order (``sort_keys=False`` keeps the emitted order).  Accepts any
    iterable of event dicts — typically ``tracer.events()``.
    """
    return write_jsonl(path, events)


def read_trace_jsonl(path: str | pathlib.Path) -> list[dict[str, object]]:
    """Inverse of :func:`write_trace_jsonl`.

    JSON has no tuple type, so node coordinates come back as lists;
    they are restored to tuples so replayed events compare equal to
    live ``tracer.events()`` output.
    """
    events: list[dict[str, object]] = []
    with pathlib.Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            for key in _NODE_KEYS:
                value = event.get(key)
                if isinstance(value, list):
                    event[key] = tuple(value)
            events.append(event)
    return events


def write_snapshots_jsonl(path: str | pathlib.Path,
                          snapshots: Iterable[Mapping[str, object]],
                          ) -> pathlib.Path:
    """Write periodic metrics snapshots as JSON Lines (one per line)."""
    return write_jsonl(path, snapshots)


def read_snapshots_jsonl(path: str | pathlib.Path) -> list[dict[str, object]]:
    """Inverse of :func:`write_snapshots_jsonl`."""
    return read_jsonl(path)


def read_series_csv(path: str | pathlib.Path) -> dict[str, list[tuple[float, float]]]:
    """Inverse of :func:`write_series_csv` (round-trip for tests)."""
    series: dict[str, list[tuple[float, float]]] = {}
    with pathlib.Path(path).open() as handle:
        reader = csv.reader(handle)
        next(reader)  # header
        for label, x, y in reader:
            series.setdefault(label, []).append((float(x), float(y)))
    return series
