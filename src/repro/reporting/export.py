"""CSV export of experiment series and delivery logs."""

from __future__ import annotations

import csv
import pathlib
from typing import Mapping, Sequence

from repro.network.stats import DeliveryLog


def write_series_csv(path: str | pathlib.Path,
                     series: Mapping[str, Sequence[tuple[float, float]]],
                     *, x_name: str = "x") -> pathlib.Path:
    """Write labelled (x, y) series as long-form CSV
    (columns: label, x, y)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["label", x_name, "value"])
        for label, values in series.items():
            for x, y in values:
                writer.writerow([label, x, y])
    return path


def write_log_csv(path: str | pathlib.Path,
                  log: DeliveryLog) -> pathlib.Path:
    """Write a delivery log's records as CSV."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([
            "class", "source", "destination", "connection", "sequence",
            "injected_cycle", "delivered_cycle", "latency_cycles",
            "deadline_ticks", "deadline_met",
        ])
        for record in log.records:
            writer.writerow([
                record.traffic_class, record.source, record.destination,
                record.connection_label, record.sequence,
                record.injected_cycle, record.delivered_cycle,
                record.latency_cycles, record.absolute_deadline,
                record.deadline_met,
            ])
    return path


def read_series_csv(path: str | pathlib.Path) -> dict[str, list[tuple[float, float]]]:
    """Inverse of :func:`write_series_csv` (round-trip for tests)."""
    series: dict[str, list[tuple[float, float]]] = {}
    with pathlib.Path(path).open() as handle:
        reader = csv.reader(handle)
        next(reader)  # header
        for label, x, y in reader:
            series.setdefault(label, []).append((float(x), float(y)))
    return series
