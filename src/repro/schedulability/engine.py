"""The analytic schedulability engine: verdicts without simulation.

:func:`analyze` replays a channel demand list against a fresh
:class:`~repro.channels.admission.AdmissionController`, mirroring the
:class:`~repro.channels.manager.ChannelManager` establishment path
step for step — route selection, deadline decomposition, the per-link
EDF demand-bound test, buffer reservation and connection-id allocation
— but never instantiates a router or runs a cycle.  The result is a
:class:`ScheduleReport`: per-channel feasibility with a structured
rejection, the predicted end-to-end worst-case bound (the sum of the
per-hop ``d_j`` along the deepest path), the slack against the
requested deadline, per-hop buffer demand, and the network-wide
bottleneck-link utilisation.

Because the mirror is exact, the engine's verdict on a demand list
equals the simulator's admission outcome for the same list established
in the same order — the agreement the validation harness
(:mod:`repro.schedulability.validate`) asserts before measuring
tightness.

:func:`predict_admission` is the *live* variant: a dry-run (admit,
then immediately release) against an existing controller, used by the
service layer's optional analytic pre-admission verdict.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.netcalc import channel_delay_bound
from repro.campaign.spec import canonical_dumps
from repro.channels.admission import (
    AdmissionController,
    AdmissionError,
    ConnectionLoad,
    HopDescriptor,
    LinkSchedule,
    Reservation,
)
from repro.channels.routing import (
    dimension_ordered_route,
    least_loaded_route,
    multicast_tree,
    shortest_route_avoiding,
    tree_parents,
)
from repro.channels.spec import FlowRequirements, TrafficSpec
from repro.core.params import RouterParams
from repro.schedulability.spec import ChannelDemand, TopologySpec

#: Rejection reasons that no amount of already-admitted load explains:
#: they follow from the request's own parameters against the router
#: constants (deadline decomposition, per-hop overhead, i_min cap,
#: rollover half-range) or from a degenerate route.  A request refused
#: for one of these can never succeed on retry while the topology and
#: parameters stand — the service layer's analytic pre-admission
#: verdict rejects them immediately instead of queueing.
LOAD_INDEPENDENT_REASONS = frozenset({
    "empty-route",
    "delay-caps",
    "deadline-too-tight",
    "hop-overhead",
    "delay-exceeds-imin",
    "rollover",
})


@dataclass
class ChannelVerdict:
    """The engine's prediction for one channel demand."""

    label: str
    source: tuple[int, int]
    destinations: tuple[tuple[int, int], ...]
    i_min: int
    s_max: int
    b_max: int
    deadline: int
    feasible: bool
    #: Structured rejection (reason slug + AdmissionError details) when
    #: infeasible; ``None`` when admitted.
    reason: Optional[str] = None
    rejection: Optional[dict] = None
    #: The (node, out_port) hops the engine routed the channel over.
    hops: list = field(default_factory=list)
    #: Per-hop delay decomposition d_j (one entry per hop).
    local_delays: list = field(default_factory=list)
    #: Predicted end-to-end worst-case latency bound in ticks: the sum
    #: of d_j along the deepest source-to-destination path.
    predicted_bound: Optional[int] = None
    #: Holding-time-aware refinement of the bound (never larger): the
    #: last hop's EDF worst-case response replaces its full d_j budget.
    #: Upstream hops keep their d_j — the deadline clock holds early
    #: arrivals to their logical schedule, so only the final hop's
    #: earliness reaches the receiving host.
    refined_bound: Optional[int] = None
    #: The same bound from the min-plus calculus (cross-check).
    netcalc_bound: Optional[float] = None
    #: Deadline budget left unused: requested D minus the bound.
    slack: Optional[int] = None
    #: Per-hop buffer demand as (node, port, packets) triples.
    buffers: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "source": list(self.source),
            "destinations": [list(node) for node in self.destinations],
            "i_min": self.i_min,
            "s_max": self.s_max,
            "b_max": self.b_max,
            "deadline": self.deadline,
            "feasible": self.feasible,
            "reason": self.reason,
            "rejection": self.rejection,
            "hops": [[list(node), port] for node, port in self.hops],
            "local_delays": list(self.local_delays),
            "predicted_bound": self.predicted_bound,
            "refined_bound": self.refined_bound,
            "netcalc_bound": self.netcalc_bound,
            "slack": self.slack,
            "buffers": [[list(node), port, packets]
                        for node, port, packets in self.buffers],
        }


@dataclass
class ScheduleReport:
    """The engine's verdict on a whole problem."""

    topology: TopologySpec
    channels: list[ChannelVerdict]
    #: Network-wide occupancy after all admissions (the controller's
    #: occupancy summary: max/mean link utilisation, buffer fill).
    occupancy: dict
    #: The most-utilised link as (node, port, utilisation), or None
    #: when nothing was admitted.
    bottleneck: Optional[tuple[tuple[int, int], int, float]]
    #: Per-node reserved packet buffers as (node, reserved, capacity),
    #: loaded nodes only.
    node_buffers: list

    @property
    def admitted(self) -> int:
        return sum(1 for verdict in self.channels if verdict.feasible)

    @property
    def rejected(self) -> int:
        return len(self.channels) - self.admitted

    @property
    def feasible(self) -> bool:
        """Every demanded channel is admissible."""
        return self.rejected == 0

    @property
    def reject_reasons(self) -> dict:
        tally: dict[str, int] = {}
        for verdict in self.channels:
            if not verdict.feasible and verdict.reason:
                tally[verdict.reason] = tally.get(verdict.reason, 0) + 1
        return dict(sorted(tally.items()))

    def verdict_for(self, label: str) -> ChannelVerdict:
        for verdict in self.channels:
            if verdict.label == label:
                return verdict
        raise KeyError(f"no verdict for channel {label!r}")

    def as_dict(self) -> dict:
        occupancy = dict(sorted(self.occupancy.items()))
        for key in ("max_link_utilisation", "mean_link_utilisation",
                    "max_buffer_fill"):
            if key in occupancy:
                occupancy[key] = round(occupancy[key], 9)
        bottleneck = None
        if self.bottleneck is not None:
            node, port, utilisation = self.bottleneck
            bottleneck = [list(node), port, round(utilisation, 9)]
        return {
            "topology": self.topology.to_dict(),
            "channels": [verdict.as_dict() for verdict in self.channels],
            "admitted": self.admitted,
            "rejected": self.rejected,
            "feasible": self.feasible,
            "reject_reasons": self.reject_reasons,
            "occupancy": occupancy,
            "bottleneck": bottleneck,
            "node_buffers": [[list(node), reserved, capacity]
                             for node, reserved, capacity
                             in self.node_buffers],
        }

    def signature(self) -> str:
        """Stable digest of the whole report (determinism checks)."""
        return hashlib.sha256(
            canonical_dumps(self.as_dict()).encode()).hexdigest()

    def summary_rows(self) -> list[tuple[str, str]]:
        """Headline numbers as display rows (CLI output)."""
        occupancy = self.occupancy
        rows = [
            ("channels", str(len(self.channels))),
            ("admissible", str(self.admitted)),
            ("infeasible", str(self.rejected)),
            ("max link utilisation",
             f"{occupancy.get('max_link_utilisation', 0.0):.3f}"),
            ("mean link utilisation",
             f"{occupancy.get('mean_link_utilisation', 0.0):.3f}"),
            ("links loaded", str(occupancy.get("links_loaded", 0))),
            ("max buffer fill",
             f"{occupancy.get('max_buffer_fill', 0.0):.3f}"),
        ]
        if self.bottleneck is not None:
            node, port, utilisation = self.bottleneck
            rows.append(("bottleneck link",
                         f"{node} port {port} ({utilisation:.3f})"))
        return rows


class _IdAllocator:
    """Mirror of the manager's per-node connection-id allocation."""

    def __init__(self, connections: int) -> None:
        self.connections = connections
        self.used: dict[tuple[int, int], set[int]] = {}

    def allocate(self, node: tuple[int, int]) -> int:
        used = self.used.setdefault(node, set())
        for cid in range(self.connections):
            if cid not in used:
                used.add(cid)
                return cid
        raise AdmissionError(
            f"router {node!r} has no free connection ids",
            reason="connection-ids", node=node, demanded=1, available=0)

    def allocate_common(self, nodes: Sequence[tuple[int, int]]) -> int:
        for cid in range(self.connections):
            if all(cid not in self.used.setdefault(node, set())
                   for node in nodes):
                for node in nodes:
                    self.used[node].add(cid)
                return cid
        raise AdmissionError(
            "no connection id free at every tree node",
            reason="connection-ids", demanded=1, available=0)

    def rollback(self, allocations: list[tuple[tuple[int, int], int]]
                 ) -> None:
        for node, cid in allocations:
            self.used[node].discard(cid)


def edf_response_bound(loads: Sequence[ConnectionLoad],
                       deadline: int) -> int:
    """Worst-case EDF completion of a packet, relative to its release.

    ``deadline`` is the packet's relative scheduling deadline on the
    link (a :class:`ConnectionLoad` deadline, i.e. ``d_j`` minus the
    hop overhead); ``loads`` is every load sharing the link, the
    packet's own connection included.  The bound is the classical
    busy-period argument: a packet released ``x`` ticks into a busy
    interval completes once all work due no later than it has been
    served, so its response is at most

        max over x in [0, busy] of  sum_l demand_l(x + deadline) - x

    which the admission test (``demand(t) <= t`` everywhere) already
    caps at ``deadline`` — this is a refinement, never a relaxation.
    The maximum over the piecewise-linear objective is attained where
    some load's demand steps, so only those candidates are evaluated.
    """
    loads = list(loads)
    if not loads:
        return min(1, deadline)
    busy = LinkSchedule()._busy_period(loads)
    if busy is None:
        return deadline
    candidates = {0}
    for load in loads:
        step = load.deadline
        while step <= busy + deadline:
            offset = step - deadline
            if 0 <= offset <= busy:
                candidates.add(offset)
            step += load.i_min
    worst = max(
        sum(load.demand(offset + deadline) for load in loads) - offset
        for offset in sorted(candidates)
    )
    return max(1, min(deadline, worst))


def _refine_bounds(verdicts: Sequence["ChannelVerdict"],
                   admission: AdmissionController,
                   reservations: dict) -> None:
    """Fill ``refined_bound`` on every admitted verdict.

    Must run after the whole demand list is replayed: the last hop's
    response depends on every load sharing the reception link.  Only
    unicast channels refine — a multicast tree's deepest leaf already
    uses a uniform decomposition and its reception links are leaves of
    the same analysis, so the refinement is left as the plain bound.
    """
    for verdict in verdicts:
        if not verdict.feasible:
            continue
        reservation = reservations.get(verdict.label)
        if reservation is None or len(verdict.destinations) != 1:
            verdict.refined_bound = verdict.predicted_bound
            continue
        last_hop = reservation.hops[-1]
        own = reservation.loads[-1]
        schedule = admission.link(last_hop.node, last_hop.out_port)
        response = edf_response_bound(schedule.loads, own.deadline)
        refined = (verdict.predicted_bound
                   - reservation.local_delays[-1]
                   + admission.hop_overhead + response)
        verdict.refined_bound = min(verdict.predicted_bound, refined)


def _unicast_route(topology: TopologySpec, admission: AdmissionController,
                   source, destination, *, adaptive: bool):
    if topology.torus:
        # Mirrors MeshNetwork.establish_channel: on a torus the
        # shortest path may cross a wrap link, which dimension-ordered
        # construction never uses, so the network routes by BFS.
        return shortest_route_avoiding(
            topology.width, topology.height, source, destination,
            failed=set(), torus=True)
    if adaptive:
        return least_loaded_route(admission, source, destination)
    return dimension_ordered_route(source, destination)


def _rejected(demand: ChannelDemand,
              exc: AdmissionError) -> ChannelVerdict:
    return ChannelVerdict(
        label=demand.label, source=demand.source,
        destinations=demand.destinations, i_min=demand.i_min,
        s_max=demand.s_max, b_max=demand.b_max,
        deadline=demand.deadline, feasible=False,
        reason=exc.reason, rejection=exc.details(),
    )


def _admit_unicast(demand: ChannelDemand, topology: TopologySpec,
                   admission: AdmissionController, ids: _IdAllocator,
                   *, adaptive: bool
                   ) -> tuple[ChannelVerdict, Reservation]:
    route = _unicast_route(topology, admission, demand.source,
                           demand.destinations[0], adaptive=adaptive)
    horizon = admission.params.default_horizon
    hops = [HopDescriptor(node=node, out_port=port, horizon=horizon)
            for node, port in route]
    reservation = admission.admit(hops, demand.spec(),
                                  demand.requirements())
    allocations: list[tuple[tuple[int, int], int]] = []
    try:
        for node, __ in route:
            allocations.append((node, ids.allocate(node)))
    except AdmissionError:
        ids.rollback(allocations)
        admission.release(reservation)
        raise
    delays = reservation.local_delays
    bound = sum(delays)
    return reservation, ChannelVerdict(
        label=demand.label, source=demand.source,
        destinations=demand.destinations, i_min=demand.i_min,
        s_max=demand.s_max, b_max=demand.b_max,
        deadline=demand.deadline, feasible=True,
        hops=list(route), local_delays=list(delays),
        predicted_bound=bound,
        netcalc_bound=channel_delay_bound(demand.spec(), list(delays)),
        slack=demand.deadline - bound,
        buffers=list(reservation.buffers),
    )


def _admit_multicast(demand: ChannelDemand,
                     admission: AdmissionController,
                     ids: _IdAllocator
                     ) -> tuple[ChannelVerdict, Reservation]:
    ports_by_node, order = multicast_tree(demand.source,
                                          list(demand.destinations))
    parents_map = tree_parents(ports_by_node, order)

    hops: list[HopDescriptor] = []
    hop_parent: list[int] = []
    node_first_hop: dict[tuple[int, int], int] = {}
    horizon = admission.params.default_horizon
    for node in order:
        for port in sorted(ports_by_node[node]):
            parent_node = parents_map[node]
            parent_index = (node_first_hop[parent_node]
                            if parent_node is not None else -1)
            node_first_hop.setdefault(node, len(hops))
            hops.append(HopDescriptor(node=node, out_port=port,
                                      horizon=horizon))
            hop_parent.append(parent_index)

    depth: dict[tuple[int, int], int] = {}
    for node in order:
        parent = parents_map[node]
        depth[node] = 1 if parent is None else depth[parent] + 1
    tree_depth = max(depth.values()) if depth else 1

    d_min = admission.hop_overhead + 1
    d_cap = min(demand.i_min, admission.params.half_range - 1)
    uniform = min(d_cap, demand.deadline // tree_depth)
    if uniform < d_min:
        raise AdmissionError(
            f"deadline {demand.deadline} too tight for a "
            f"depth-{tree_depth} multicast tree",
            reason="deadline-too-tight",
            demanded=d_min * tree_depth, available=demand.deadline)
    reservation = admission.admit(
        hops, demand.spec(), demand.requirements(),
        local_delays=[uniform] * len(hops), parents=hop_parent)
    try:
        ids.allocate_common(order)
    except AdmissionError:
        admission.release(reservation)
        raise
    bound = uniform * tree_depth
    return reservation, ChannelVerdict(
        label=demand.label, source=demand.source,
        destinations=demand.destinations, i_min=demand.i_min,
        s_max=demand.s_max, b_max=demand.b_max,
        deadline=demand.deadline, feasible=True,
        hops=[(hop.node, hop.out_port) for hop in hops],
        local_delays=[uniform] * len(hops),
        predicted_bound=bound,
        netcalc_bound=channel_delay_bound(
            demand.spec(), [uniform] * tree_depth),
        slack=demand.deadline - bound,
        buffers=list(reservation.buffers),
    )


@dataclass
class _AnalysisState:
    """The live mirror behind a report (internal; fault model input).

    ``analyze`` discards this; :mod:`repro.schedulability.faultmodel`
    keeps it to replay fault-recovery re-admissions (detour routes,
    connection-id churn) against exactly the state the fault-free
    verdicts left behind.
    """

    admission: AdmissionController
    ids: _IdAllocator
    reservations: dict[str, Reservation]


def _analyze_live(topology: TopologySpec,
                  demands: Sequence[ChannelDemand], *,
                  params: Optional[RouterParams] = None,
                  adaptive: bool = True
                  ) -> tuple[ScheduleReport, _AnalysisState]:
    """`analyze`, but also returning the live admission mirror."""
    admission = AdmissionController(params or RouterParams())
    ids = _IdAllocator(admission.params.connections)
    verdicts: list[ChannelVerdict] = []
    reservations: dict[str, Reservation] = {}
    for demand in demands:
        try:
            if len(demand.destinations) == 1:
                reservation, verdict = _admit_unicast(
                    demand, topology, admission, ids, adaptive=adaptive)
            else:
                reservation, verdict = _admit_multicast(
                    demand, admission, ids)
            reservations[demand.label] = reservation
            verdicts.append(verdict)
        except AdmissionError as exc:
            verdicts.append(_rejected(demand, exc))
    _refine_bounds(verdicts, admission, reservations)

    bottleneck = None
    for (node, port), schedule in sorted(admission._links.items()):
        if not schedule.loads:
            continue
        utilisation = schedule.utilisation
        if bottleneck is None or utilisation > bottleneck[2]:
            bottleneck = (node, port, utilisation)
    capacity = admission.params.tc_packet_slots
    node_buffers = [(node, buffers.reserved_total, capacity)
                    for node, buffers in sorted(admission._nodes.items())
                    if buffers.reserved_total]
    report = ScheduleReport(
        topology=topology, channels=verdicts,
        occupancy=admission.occupancy(), bottleneck=bottleneck,
        node_buffers=node_buffers,
    )
    return report, _AnalysisState(admission=admission, ids=ids,
                                  reservations=reservations)


def analyze(topology: TopologySpec,
            demands: Sequence[ChannelDemand], *,
            params: Optional[RouterParams] = None,
            adaptive: bool = True) -> ScheduleReport:
    """Predict admission outcomes and worst-case bounds for a problem.

    Demands are replayed in list order against a fresh controller —
    order matters exactly as it does for real establishment (earlier
    channels consume link budget and buffers the later ones see).
    ``adaptive`` mirrors the manager's default least-loaded route
    selection; ``False`` forces dimension order (the service layer's
    setting).
    """
    report, __ = _analyze_live(topology, demands, params=params,
                               adaptive=adaptive)
    return report


def predict_admission(admission: AdmissionController,
                      hops: list[HopDescriptor], spec: TrafficSpec,
                      requirements: FlowRequirements) -> dict:
    """Dry-run verdict against a *live* controller (no state change).

    Admits and immediately releases: :meth:`AdmissionController.admit`
    commits nothing on failure and :meth:`~AdmissionController.release`
    exactly undoes a success, so the controller is untouched either
    way.  Returns a verdict dict with ``feasible``, the structured
    ``reason``/``rejection`` on failure, whether that reason is
    load-independent (see :data:`LOAD_INDEPENDENT_REASONS`), and the
    predicted bound/decomposition on success.
    """
    try:
        reservation = admission.admit(hops, spec, requirements)
    except AdmissionError as exc:
        return {
            "feasible": False,
            "reason": exc.reason,
            "rejection": exc.details(),
            "load_independent": exc.reason in LOAD_INDEPENDENT_REASONS,
            "local_delays": None,
            "predicted_bound": None,
        }
    admission.release(reservation)
    return {
        "feasible": True,
        "reason": None,
        "rejection": None,
        "load_independent": False,
        "local_delays": list(reservation.local_delays),
        "predicted_bound": sum(reservation.local_delays),
    }
