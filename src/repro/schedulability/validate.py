"""Tightness validation: predicted bounds against simulated worst cases.

The engine's bounds are only trustworthy if (a) its admission verdicts
match what the simulator actually admits and (b) no fault-free run
ever observes a latency above the predicted bound.
:func:`measure_tightness` checks both: it analyses a demand list, then
establishes the same demands in the same order on a real
:class:`~repro.network.network.MeshNetwork` and drives every admitted
channel with its worst case — all sources phase-aligned at tick zero,
the full ``B_max`` burst up front, then strictly periodic sends at
``I_min`` — and reduces the delivery log to per-channel observed
worst-case latency.

The observed latency of a delivery is measured against its *logical*
arrival time (the deadline clock of the model): ``delivered_tick -
(absolute_deadline - predicted_bound)``.  The safety invariant
``observed <= predicted`` is therefore exactly "no deadline miss", and
the per-channel ``gap = predicted - observed`` quantifies how
conservative the analysis is.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.campaign.spec import canonical_dumps
from repro.channels.admission import AdmissionError
from repro.core.params import RouterParams
from repro.schedulability.engine import ScheduleReport, analyze
from repro.schedulability.spec import ChannelDemand, TopologySpec


@dataclass
class ChannelTightness:
    """Predicted versus observed worst case for one admitted channel."""

    label: str
    predicted: int                 # the engine's bound, ticks
    observed: Optional[int]        # worst measured latency, ticks
    deliveries: int
    misses: int

    @property
    def gap(self) -> Optional[int]:
        """How far under the bound the worst observation stayed."""
        if self.observed is None:
            return None
        return self.predicted - self.observed

    @property
    def safe(self) -> bool:
        """The safety invariant for this channel (vacuous if silent)."""
        return self.observed is None or self.observed <= self.predicted

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "predicted": self.predicted,
            "observed": self.observed,
            "gap": self.gap,
            "deliveries": self.deliveries,
            "misses": self.misses,
            "safe": self.safe,
        }


@dataclass
class TightnessReport:
    """Outcome of one predict-then-measure validation run."""

    topology: TopologySpec
    engine: str
    ticks: int
    prediction: ScheduleReport
    channels: list[ChannelTightness]
    #: Engine-vs-simulator admission disagreements (must stay empty).
    mismatches: list = field(default_factory=list)

    @property
    def violations(self) -> list[str]:
        """Channels whose observed worst case exceeded the bound."""
        return [entry.label for entry in self.channels if not entry.safe]

    @property
    def total_misses(self) -> int:
        return sum(entry.misses for entry in self.channels)

    @property
    def ok(self) -> bool:
        """Verdicts agreed, every bound held, no deadline missed."""
        return (not self.mismatches and not self.violations
                and self.total_misses == 0)

    def as_dict(self) -> dict:
        return {
            "topology": self.topology.to_dict(),
            "engine": self.engine,
            "ticks": self.ticks,
            "admitted": self.prediction.admitted,
            "rejected": self.prediction.rejected,
            "reject_reasons": self.prediction.reject_reasons,
            "channels": [entry.as_dict() for entry in self.channels],
            "mismatches": list(self.mismatches),
            "violations": self.violations,
            "total_misses": self.total_misses,
            "ok": self.ok,
        }

    def signature(self) -> str:
        return hashlib.sha256(
            canonical_dumps(self.as_dict()).encode()).hexdigest()

    def gap_rows(self) -> list[list[str]]:
        """Per-channel tightness rows (label, predicted, observed...)."""
        rows = []
        for entry in self.channels:
            observed = "-" if entry.observed is None else str(entry.observed)
            gap = "-" if entry.gap is None else str(entry.gap)
            rows.append([entry.label, str(entry.predicted), observed,
                         gap, str(entry.deliveries),
                         "yes" if entry.safe else "NO"])
        return rows


def drive_worst_case(net, channels: Sequence[tuple[ChannelDemand, object]],
                     ticks: int) -> None:
    """Adversarial driving: aligned phases, bursts up front.

    Every channel sends at tick zero (maximal contention: the i_min
    draw set shares that phase), fires its whole ``B_max`` allowance
    there, and then sends strictly periodically.  Rate-based source
    flow control shapes the burst's injection (horizon zero holds a
    packet until its logical arrival), which is precisely the model's
    worst admissible behaviour — faster sources only push their own
    deadlines out.
    """
    for tick in range(ticks):
        for demand, channel in channels:
            if tick % demand.i_min == 0:
                sends = demand.b_max if tick == 0 else 1
                for __ in range(sends):
                    net.send_message(channel)
        net.run_ticks(1)
    net.drain(max_cycles=2_000_000)


def measure_tightness(topology: TopologySpec,
                      demands: Sequence[ChannelDemand], *,
                      ticks: int, engine: str = "exact",
                      params: Optional[RouterParams] = None,
                      adaptive: bool = True):
    """Run the predict-then-measure loop; returns ``(net, report)``.

    The returned network has run to completion (drained), so callers
    can reduce its delivery log further (the campaign workload does).
    """
    from repro.network.network import MeshNetwork

    prediction = analyze(topology, demands, params=params,
                         adaptive=adaptive)
    net = MeshNetwork(topology.width, topology.height, params=params,
                      torus=topology.torus, engine=engine)
    mismatches: list[str] = []
    established: list[tuple[ChannelDemand, object]] = []
    verdicts: dict[str, object] = {}
    for demand, verdict in zip(demands, prediction.channels):
        destinations = (demand.destinations[0]
                        if len(demand.destinations) == 1
                        else demand.destinations)
        try:
            channel = net.establish_channel(
                demand.source, destinations, demand.spec(),
                deadline=demand.deadline, label=demand.label,
                adaptive=adaptive)
        except AdmissionError as exc:
            if verdict.feasible:
                mismatches.append(
                    f"{demand.label}: engine admitted but simulator "
                    f"rejected ({exc.reason})")
            elif exc.reason != verdict.reason:
                mismatches.append(
                    f"{demand.label}: rejection reason diverged "
                    f"(engine {verdict.reason!r}, "
                    f"simulator {exc.reason!r})")
            continue
        if not verdict.feasible:
            mismatches.append(
                f"{demand.label}: engine rejected ({verdict.reason}) "
                f"but simulator admitted")
            continue
        if channel.deadline != verdict.predicted_bound:
            mismatches.append(
                f"{demand.label}: bound diverged (engine "
                f"{verdict.predicted_bound}, simulator "
                f"{channel.deadline})")
        established.append((demand, channel))
        verdicts[demand.label] = verdict

    drive_worst_case(net, established, ticks)

    slot = net.params.slot_cycles
    worst: dict[str, int] = {}
    counts: dict[str, int] = {}
    misses: dict[str, int] = {}
    for record in net.log.records:
        label = record.connection_label
        if (label not in verdicts or record.duplicate
                or record.traffic_class != "TC"):
            continue
        delivered_tick = -(-record.delivered_cycle // slot)
        predicted = verdicts[label].predicted_bound
        # absolute_deadline = logical_arrival + predicted, so this is
        # the latency measured from the logical arrival time.
        latency = delivered_tick - (record.absolute_deadline - predicted)
        worst[label] = max(worst.get(label, latency), latency)
        counts[label] = counts.get(label, 0) + 1
        if record.deadline_met is False:
            misses[label] = misses.get(label, 0) + 1

    channels = [
        ChannelTightness(
            label=demand.label,
            predicted=verdicts[demand.label].predicted_bound,
            observed=worst.get(demand.label),
            deliveries=counts.get(demand.label, 0),
            misses=misses.get(demand.label, 0),
        )
        for demand, __ in established
    ]
    report = TightnessReport(
        topology=topology, engine=engine, ticks=ticks,
        prediction=prediction, channels=channels,
        mismatches=mismatches,
    )
    return net, report
