"""Tightness validation: predicted bounds against simulated worst cases.

The engine's bounds are only trustworthy if (a) its admission verdicts
match what the simulator actually admits and (b) no fault-free run
ever observes a latency above the predicted bound.
:func:`measure_tightness` checks both: it analyses a demand list, then
establishes the same demands in the same order on a real
:class:`~repro.network.network.MeshNetwork` and drives every admitted
channel with its worst case — all sources phase-aligned at tick zero,
the full ``B_max`` burst up front, then strictly periodic sends at
``I_min`` — and reduces the delivery log to per-channel observed
worst-case latency.

The observed latency of a delivery is measured against its *logical*
arrival time (the deadline clock of the model): ``delivered_tick -
(absolute_deadline - predicted_bound)``.  The safety invariant
``observed <= predicted`` is therefore exactly "no deadline miss", and
the per-channel ``gap = predicted - observed`` quantifies how
conservative the analysis is.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.campaign.spec import canonical_dumps
from repro.channels.admission import AdmissionError
from repro.core.params import RouterParams
from repro.schedulability.engine import ScheduleReport, analyze
from repro.schedulability.spec import ChannelDemand, TopologySpec


@dataclass
class ChannelTightness:
    """Predicted versus observed worst case for one admitted channel."""

    label: str
    predicted: int                 # the engine's bound, ticks
    observed: Optional[int]        # worst measured latency, ticks
    deliveries: int
    misses: int

    @property
    def gap(self) -> Optional[int]:
        """How far under the bound the worst observation stayed."""
        if self.observed is None:
            return None
        return self.predicted - self.observed

    @property
    def safe(self) -> bool:
        """The safety invariant for this channel (vacuous if silent)."""
        return self.observed is None or self.observed <= self.predicted

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "predicted": self.predicted,
            "observed": self.observed,
            "gap": self.gap,
            "deliveries": self.deliveries,
            "misses": self.misses,
            "safe": self.safe,
        }


@dataclass
class TightnessReport:
    """Outcome of one predict-then-measure validation run."""

    topology: TopologySpec
    engine: str
    ticks: int
    prediction: ScheduleReport
    channels: list[ChannelTightness]
    #: Engine-vs-simulator admission disagreements (must stay empty).
    mismatches: list = field(default_factory=list)

    @property
    def violations(self) -> list[str]:
        """Channels whose observed worst case exceeded the bound."""
        return [entry.label for entry in self.channels if not entry.safe]

    @property
    def total_misses(self) -> int:
        return sum(entry.misses for entry in self.channels)

    @property
    def ok(self) -> bool:
        """Verdicts agreed, every bound held, no deadline missed."""
        return (not self.mismatches and not self.violations
                and self.total_misses == 0)

    def as_dict(self) -> dict:
        return {
            "topology": self.topology.to_dict(),
            "engine": self.engine,
            "ticks": self.ticks,
            "admitted": self.prediction.admitted,
            "rejected": self.prediction.rejected,
            "reject_reasons": self.prediction.reject_reasons,
            "channels": [entry.as_dict() for entry in self.channels],
            "mismatches": list(self.mismatches),
            "violations": self.violations,
            "total_misses": self.total_misses,
            "ok": self.ok,
        }

    def signature(self) -> str:
        return hashlib.sha256(
            canonical_dumps(self.as_dict()).encode()).hexdigest()

    def gap_rows(self) -> list[list[str]]:
        """Per-channel tightness rows (label, predicted, observed...)."""
        rows = []
        for entry in self.channels:
            observed = "-" if entry.observed is None else str(entry.observed)
            gap = "-" if entry.gap is None else str(entry.gap)
            rows.append([entry.label, str(entry.predicted), observed,
                         gap, str(entry.deliveries),
                         "yes" if entry.safe else "NO"])
        return rows


def drive_worst_case(net, channels: Sequence[tuple[ChannelDemand, object]],
                     ticks: int) -> None:
    """Adversarial driving: aligned phases, bursts up front.

    Every channel sends at tick zero (maximal contention: the i_min
    draw set shares that phase), fires its whole ``B_max`` allowance
    there, and then sends strictly periodically.  Rate-based source
    flow control shapes the burst's injection (horizon zero holds a
    packet until its logical arrival), which is precisely the model's
    worst admissible behaviour — faster sources only push their own
    deadlines out.
    """
    for tick in range(ticks):
        for demand, channel in channels:
            if tick % demand.i_min == 0:
                sends = demand.b_max if tick == 0 else 1
                for __ in range(sends):
                    net.send_message(channel)
        net.run_ticks(1)
    net.drain(max_cycles=2_000_000)


def measure_tightness(topology: TopologySpec,
                      demands: Sequence[ChannelDemand], *,
                      ticks: int, engine: str = "exact",
                      params: Optional[RouterParams] = None,
                      adaptive: bool = True):
    """Run the predict-then-measure loop; returns ``(net, report)``.

    The returned network has run to completion (drained), so callers
    can reduce its delivery log further (the campaign workload does).
    """
    from repro.network.network import MeshNetwork

    prediction = analyze(topology, demands, params=params,
                         adaptive=adaptive)
    net = MeshNetwork(topology.width, topology.height, params=params,
                      torus=topology.torus, engine=engine)
    mismatches: list[str] = []
    established: list[tuple[ChannelDemand, object]] = []
    verdicts: dict[str, object] = {}
    for demand, verdict in zip(demands, prediction.channels):
        destinations = (demand.destinations[0]
                        if len(demand.destinations) == 1
                        else demand.destinations)
        try:
            channel = net.establish_channel(
                demand.source, destinations, demand.spec(),
                deadline=demand.deadline, label=demand.label,
                adaptive=adaptive)
        except AdmissionError as exc:
            if verdict.feasible:
                mismatches.append(
                    f"{demand.label}: engine admitted but simulator "
                    f"rejected ({exc.reason})")
            elif exc.reason != verdict.reason:
                mismatches.append(
                    f"{demand.label}: rejection reason diverged "
                    f"(engine {verdict.reason!r}, "
                    f"simulator {exc.reason!r})")
            continue
        if not verdict.feasible:
            mismatches.append(
                f"{demand.label}: engine rejected ({verdict.reason}) "
                f"but simulator admitted")
            continue
        if channel.deadline != verdict.predicted_bound:
            mismatches.append(
                f"{demand.label}: bound diverged (engine "
                f"{verdict.predicted_bound}, simulator "
                f"{channel.deadline})")
        established.append((demand, channel))
        verdicts[demand.label] = verdict

    drive_worst_case(net, established, ticks)

    slot = net.params.slot_cycles
    worst: dict[str, int] = {}
    counts: dict[str, int] = {}
    misses: dict[str, int] = {}
    for record in net.log.records:
        label = record.connection_label
        if (label not in verdicts or record.duplicate
                or record.traffic_class != "TC"):
            continue
        delivered_tick = -(-record.delivered_cycle // slot)
        # The simulator stamps absolute_deadline = logical_arrival +
        # channel.deadline, and channel.deadline equals the engine's
        # *raw* bound (asserted above) — so subtracting the raw bound
        # recovers the logical arrival the latency is measured from.
        raw = verdicts[label].predicted_bound
        latency = delivered_tick - (record.absolute_deadline - raw)
        worst[label] = max(worst.get(label, latency), latency)
        counts[label] = counts.get(label, 0) + 1
        if record.deadline_met is False:
            misses[label] = misses.get(label, 0) + 1

    # The safety invariant is gated against the holding-time-aware
    # *refined* bound (never larger than the raw bound), so the
    # measured gap quantifies the refined analysis.
    channels = [
        ChannelTightness(
            label=demand.label,
            predicted=(verdicts[demand.label].refined_bound
                       or verdicts[demand.label].predicted_bound),
            observed=worst.get(demand.label),
            deliveries=counts.get(demand.label, 0),
            misses=misses.get(demand.label, 0),
        )
        for demand, __ in established
    ]
    report = TightnessReport(
        topology=topology, engine=engine, ticks=ticks,
        prediction=prediction, channels=channels,
        mismatches=mismatches,
    )
    return net, report


# ---------------------------------------------------------------------------
# Chaos tightness: fault-aware bounds against real FaultInjector runs
# ---------------------------------------------------------------------------

@dataclass
class ChaosChannelTightness:
    """Fault-aware bound versus chaos-run observation for one channel."""

    label: str
    status: str                    # the fault model's verdict
    #: The bound the gate holds the channel to: the recovery envelope
    #: for affected channels, the (worst of pre/post-fault) refined
    #: fault-free bound otherwise; ``None`` for at-risk channels, which
    #: are reported but never gated.
    predicted: Optional[int]
    observed: Optional[int]        # worst latency from original logical
    deliveries: int                # arrival, ticks
    misses: int                    # deliveries past their own deadline
    undelivered: int               # (origin, destination) pairs lost

    @property
    def gated(self) -> bool:
        return self.predicted is not None

    @property
    def gap(self) -> Optional[int]:
        if self.predicted is None or self.observed is None:
            return None
        return self.predicted - self.observed

    @property
    def safe(self) -> bool:
        """The chaos safety invariant (vacuous for at-risk channels)."""
        if not self.gated:
            return True
        return ((self.observed is None or self.observed <= self.predicted)
                and self.misses == 0 and self.undelivered == 0)

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "status": self.status,
            "predicted": self.predicted,
            "observed": self.observed,
            "gap": self.gap,
            "deliveries": self.deliveries,
            "misses": self.misses,
            "undelivered": self.undelivered,
            "safe": self.safe,
        }


@dataclass
class ChaosTightnessReport:
    """Outcome of one fault-aware predict-then-measure run."""

    topology: TopologySpec
    engine: str
    ticks: int
    plan_signature: str
    #: The fault model's report (``FaultAwareReport``).
    prediction: object
    channels: list[ChaosChannelTightness]
    mismatches: list = field(default_factory=list)

    @property
    def violations(self) -> list[str]:
        return [entry.label for entry in self.channels if not entry.safe]

    @property
    def total_misses(self) -> int:
        return sum(entry.misses for entry in self.channels
                   if entry.gated)

    @property
    def ok(self) -> bool:
        """Verdicts agreed and every guaranteed/degraded-guaranteed
        channel stayed under its bound with nothing lost or late."""
        return not self.mismatches and not self.violations

    def as_dict(self) -> dict:
        return {
            "topology": self.topology.to_dict(),
            "engine": self.engine,
            "ticks": self.ticks,
            "plan_signature": self.plan_signature,
            "prediction": self.prediction.as_dict(),
            "channels": [entry.as_dict() for entry in self.channels],
            "mismatches": list(self.mismatches),
            "violations": self.violations,
            "total_misses": self.total_misses,
            "ok": self.ok,
        }

    def signature(self) -> str:
        return hashlib.sha256(
            canonical_dumps(self.as_dict()).encode()).hexdigest()

    def gap_rows(self) -> list[list[str]]:
        """Per-channel degraded-gap rows (CLI / benchmark artefact)."""
        rows = []
        for entry in self.channels:
            predicted = ("-" if entry.predicted is None
                         else str(entry.predicted))
            observed = ("-" if entry.observed is None
                        else str(entry.observed))
            gap = "-" if entry.gap is None else str(entry.gap)
            rows.append([entry.label, entry.status, predicted, observed,
                         gap, str(entry.deliveries),
                         str(entry.misses),
                         "yes" if entry.safe else "NO"])
        return rows


def drive_chaos(net, demands: Sequence[ChannelDemand],
                ticks: int, *, controller=None,
                settle_ticks: int = 8192) -> None:
    """Worst-case driving that survives reroutes.

    Same adversarial pattern as :func:`drive_worst_case` — aligned
    phases, the full burst up front, strictly periodic after — but the
    channel handle is resolved by label *every tick*: a reroute replaces
    the handle, and a degraded channel keeps sending over its
    best-effort fallback, exactly as an application would.

    After the driving window the run *settles*: retransmission timers
    fire long after the last send (exponential backoff doubles past the
    deadline each retry), and the fabric is idle in between — a bare
    drain would return with messages still owed.  When ``controller``
    is given, the loop keeps stepping until its retry ledger is empty
    (bounded by ``settle_ticks``).  A drain that then times out is
    tolerated: permanently wedged traffic is the caller's business and
    shows up as undelivered messages.
    """
    manager = net.manager
    for tick in range(ticks):
        for demand in demands:
            if tick % demand.i_min == 0:
                channel = manager.find(demand.label)
                if channel is None:
                    continue
                sends = demand.b_max if tick == 0 else 1
                for __ in range(sends):
                    net.send_message(channel)
        net.run_ticks(1)
    remaining = settle_ticks
    while (controller is not None and remaining > 0
           and (controller.pending_retransmits
                or controller.pending_be_retries)):
        net.run_ticks(1)
        remaining -= 1
    try:
        net.drain(max_cycles=2_000_000)
    except TimeoutError:
        pass


def measure_chaos_tightness(topology: TopologySpec,
                            demands: Sequence[ChannelDemand],
                            plan, *,
                            ticks: int, engine: str = "exact",
                            params: Optional[RouterParams] = None,
                            adaptive: bool = True,
                            recovery=None):
    """Fault-aware predict-then-measure; returns ``(net, report)``.

    Analyses the demands under ``plan`` with
    :func:`repro.schedulability.faultmodel.analyze_with_faults`, then
    establishes the same channels on a real network with the full
    fault-tolerance stack installed, replays the *actual* plan through
    a :class:`~repro.faults.injector.FaultInjector`, and reduces the
    delivery log to per-channel worst-case latency **measured from each
    message's original logical arrival**: a retransmitted copy carries
    a fresh deadline (which it meets), so its extra latency is exactly
    the recovery envelope's business.  A send hook registered *after*
    the recovery controller's maps every wire sequence back to the
    original attempt it re-sends.
    """
    from repro.faults import install_fault_tolerance
    from repro.faults.injector import FaultInjector
    from repro.network.network import MeshNetwork
    from repro.schedulability.faultmodel import AT_RISK, analyze_with_faults

    prediction = analyze_with_faults(topology, demands, plan,
                                     params=params, adaptive=adaptive,
                                     recovery=recovery)
    base = prediction.base
    net = MeshNetwork(topology.width, topology.height, params=params,
                      torus=topology.torus, engine=engine)
    tolerance = install_fault_tolerance(net)

    # Wire-sequence bookkeeping.  The recovery controller's send hook
    # (registered first, inside install_fault_tolerance) stamps
    # ``retransmit_of`` on re-sent fragments before this hook runs, so
    # every fragment maps to the original attempt it covers, and every
    # original attempt records the logical arrival its latency is
    # measured from (``absolute_deadline`` minus the channel's *current*
    # bound — reroutes change the bound, and the hook sees the live
    # handle).
    origin_of: dict[tuple[str, int], int] = {}
    arrival_of: dict[tuple[str, int], int] = {}

    def _record_sends(channel, packets, payload) -> None:
        for packet in packets:
            meta = packet.meta
            origin = (meta.retransmit_of
                      if meta.retransmit_of is not None
                      else meta.sequence)
            origin_of[(channel.label, meta.sequence)] = origin
            if (meta.retransmit_of is None
                    and meta.absolute_deadline is not None):
                arrival_of[(channel.label, meta.sequence)] = (
                    meta.absolute_deadline - channel.deadline)

    net.tc_send_hooks.append(_record_sends)

    mismatches: list[str] = []
    established: list[ChannelDemand] = []
    for demand, verdict in zip(demands, base.channels):
        destinations = (demand.destinations[0]
                        if len(demand.destinations) == 1
                        else demand.destinations)
        try:
            channel = net.establish_channel(
                demand.source, destinations, demand.spec(),
                deadline=demand.deadline, label=demand.label,
                adaptive=adaptive)
        except AdmissionError as exc:
            if verdict.feasible:
                mismatches.append(
                    f"{demand.label}: engine admitted but simulator "
                    f"rejected ({exc.reason})")
            elif exc.reason != verdict.reason:
                mismatches.append(
                    f"{demand.label}: rejection reason diverged "
                    f"(engine {verdict.reason!r}, "
                    f"simulator {exc.reason!r})")
            continue
        if not verdict.feasible:
            mismatches.append(
                f"{demand.label}: engine rejected ({verdict.reason}) "
                f"but simulator admitted")
            continue
        if channel.deadline != verdict.predicted_bound:
            mismatches.append(
                f"{demand.label}: bound diverged (engine "
                f"{verdict.predicted_bound}, simulator "
                f"{channel.deadline})")
        established.append(demand)

    injector = FaultInjector(net, plan)
    net.engine.add_component(injector)
    drive_chaos(net, established, ticks,
                controller=tolerance.controller)

    slot = net.params.slot_cycles
    worst: dict[str, int] = {}
    counts: dict[str, int] = {}
    misses: dict[str, int] = {}
    delivered: dict[str, set] = {}
    for record in net.log.records:
        label = record.connection_label
        if (record.traffic_class != "TC" or record.duplicate
                or label is None):
            continue
        origin = origin_of.get((label, record.sequence))
        if origin is None:
            continue
        arrival = arrival_of.get((label, origin))
        if arrival is None:
            continue
        delivered_tick = -(-record.delivered_cycle // slot)
        latency = delivered_tick - arrival
        worst[label] = max(worst.get(label, latency), latency)
        counts[label] = counts.get(label, 0) + 1
        delivered.setdefault(label, set()).add(
            (origin, record.delivered_node))
        if record.deadline_met is False:
            misses[label] = misses.get(label, 0) + 1

    channels: list[ChaosChannelTightness] = []
    for demand in established:
        fault_verdict = prediction.verdict_for(demand.label)
        sent_origins = {seq for (label, seq) in arrival_of
                        if label == demand.label}
        expected = {(origin, destination) for origin in sent_origins
                    for destination in demand.destinations}
        undelivered = len(expected - delivered.get(demand.label, set()))
        channels.append(ChaosChannelTightness(
            label=demand.label,
            status=fault_verdict.status,
            predicted=(None if fault_verdict.status == AT_RISK
                       else fault_verdict.guaranteed_bound),
            observed=worst.get(demand.label),
            deliveries=counts.get(demand.label, 0),
            misses=misses.get(demand.label, 0),
            undelivered=undelivered,
        ))
    report = ChaosTightnessReport(
        topology=topology, engine=engine, ticks=ticks,
        plan_signature=plan.signature(), prediction=prediction,
        channels=channels, mismatches=mismatches,
    )
    return net, report
