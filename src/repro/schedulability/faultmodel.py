"""Fault-aware schedulability: degraded-but-guaranteed verdicts.

The fault-free engine (:mod:`repro.schedulability.engine`) proves that
admitted channels meet their deadlines while nothing breaks.  This
module composes the fault-tolerance subsystem's recovery model — the
watchdog's detection latency, the reroute path's re-admission cost and
the retransmission layer's deadline-based exponential backoff
(:mod:`repro.faults`) — into that analysis, so a ``(Problem,
FaultPlan)`` pair yields one of three per-channel verdicts:

``guaranteed``
    The requested deadline holds even through the worst case the plan
    can inflict: detection, reroute, and every retransmission the
    plan's corruption budgets can force.
``degraded-guaranteed``
    Delivery is still guaranteed, but only within a *quantified
    inflated bound* (the recovery envelope) that exceeds the requested
    deadline.  A lost original produces no delivery; its
    retransmission carries a fresh deadline it does meet — so the
    channel sees zero recorded deadline misses while its observed
    latency, measured from the original logical arrival, is covered by
    the envelope.
``at-risk``
    The analysis cannot bound delivery.  Structured reasons:
    ``no-reroute-path`` (every surviving route is cut — recovery
    demotes the channel to best-effort), ``no-reroute-capacity`` (a
    surviving path exists but fails re-admission — same demotion) and
    ``retry-budget-exhausted`` (the plan can burn more send attempts
    than ``retransmit_limit`` allows).

The recovery envelope for a channel with fault-free bound ``D`` hit by
a cut is::

    (D_eff + margin) * (2**r - 1)  +  b_max * i_min  +  D_detour  +  1

where ``r`` is the number of failed send attempts before one succeeds
(retry ``r`` fires ``(D + margin) * (2**r - 1)`` ticks after a
message's logical arrival — the retransmission layer's backoff,
derived from :class:`~repro.faults.recovery.RecoveryController`
parameters, never hard-coded), ``D_eff = max(D, D_detour)`` covers
the timeout switching to the detour's bound mid-backoff, the
``b_max * i_min`` term covers regulator backlog pushing the resend's
logical arrival out, ``D_detour`` is the detour's admitted bound and
the final tick absorbs slot rounding.

Approximations (all conservative, all validated by the chaos gate in
:func:`repro.schedulability.validate.measure_chaos_tightness`):

* Detours avoid **every** link the plan ever cuts (including flapped
  links), so one reroute per channel suffices; the real controller
  only avoids links already detected dead, and each additional cut
  wave is charged one extra failed attempt.
* A corruption/drop budget of ``k`` packets on a route is charged
  ``ceil(k / packets_per_message)`` failed attempts to this channel,
  as if no other traffic helped drain the budget.
* Babble events only perturb best-effort traffic and never affect a
  time-constrained verdict.
"""

from __future__ import annotations

import hashlib
import inspect
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.campaign.spec import canonical_dumps
from repro.channels.admission import AdmissionError, HopDescriptor
from repro.channels.routing import (
    RouteError,
    multicast_tree_avoiding,
    shortest_route_avoiding,
    tree_parents,
)
from repro.core.params import RouterParams
from repro.core.ports import RECEPTION
from repro.faults.plan import CORRUPT, CUT, DROP, FaultPlan
from repro.faults.recovery import RecoveryController
from repro.schedulability.engine import (
    ChannelVerdict,
    ScheduleReport,
    _analyze_live,
    edf_response_bound,
)
from repro.schedulability.spec import ChannelDemand, Problem, TopologySpec

#: Verdict statuses.
GUARANTEED = "guaranteed"
DEGRADED_GUARANTEED = "degraded-guaranteed"
AT_RISK = "at-risk"

#: Structured at-risk reasons.
NO_REROUTE_PATH = "no-reroute-path"
NO_REROUTE_CAPACITY = "no-reroute-capacity"
RETRY_BUDGET_EXHAUSTED = "retry-budget-exhausted"


def _signature_default(callable_, name: str):
    parameter = inspect.signature(callable_).parameters[name]
    if parameter.default is inspect.Parameter.empty:
        raise ValueError(f"{callable_!r} has no default for {name!r}")
    return parameter.default


@dataclass(frozen=True)
class RecoveryModel:
    """The recovery subsystem's timing constants, as the bound uses them.

    Built by :meth:`derive` from the *actual* defaults of
    :class:`~repro.faults.recovery.RecoveryController` and the
    watchdog's threshold convention (``miss_threshold`` defaults to
    ``params.tc_packet_bytes`` missed byte-transfers), so the analytic
    envelope can never silently drift from the implementation — a test
    compares this model against a live installed instance.
    """

    #: Missed byte-transfers before the watchdog declares a link dead.
    miss_threshold: int
    #: Retransmission-check margin past a message's deadline, ticks.
    tc_margin_ticks: int
    #: Retries before the recovery layer abandons a message.
    retransmit_limit: int
    #: Link throughput, bytes per cycle (missed transfers accrue at
    #: most this fast on a dead link that is being offered traffic).
    link_bytes_per_cycle: int
    #: Cycles per scheduler tick.
    slot_cycles: int

    @classmethod
    def derive(cls, params: Optional[RouterParams] = None, *,
               miss_threshold: Optional[int] = None,
               tc_margin_ticks: Optional[int] = None,
               retransmit_limit: Optional[int] = None) -> "RecoveryModel":
        """The model for a default :func:`install_fault_tolerance`.

        Every constant not overridden is read off the implementation:
        the controller's signature defaults and the watchdog's
        ``tc_packet_bytes`` threshold convention.
        """
        params = params or RouterParams()
        if miss_threshold is None:
            # LinkWatchdog(miss_threshold=None) resolves to this.
            miss_threshold = params.tc_packet_bytes
        if tc_margin_ticks is None:
            tc_margin_ticks = _signature_default(
                RecoveryController.__init__, "tc_margin_ticks")
        if retransmit_limit is None:
            retransmit_limit = _signature_default(
                RecoveryController.__init__, "retransmit_limit")
        return cls(
            miss_threshold=miss_threshold,
            tc_margin_ticks=tc_margin_ticks,
            retransmit_limit=retransmit_limit,
            link_bytes_per_cycle=params.link_bytes_per_cycle,
            slot_cycles=params.slot_cycles,
        )

    @classmethod
    def for_installed(cls, watchdog, controller) -> "RecoveryModel":
        """The model matching a live watchdog/controller pair."""
        params = watchdog.network.params
        return cls(
            miss_threshold=watchdog.miss_threshold,
            tc_margin_ticks=controller.tc_margin_ticks,
            retransmit_limit=controller.retransmit_limit,
            link_bytes_per_cycle=params.link_bytes_per_cycle,
            slot_cycles=params.slot_cycles,
        )

    @property
    def detection_ticks(self) -> int:
        """Worst-case watchdog detection latency, in ticks.

        A dead link being offered traffic accrues missed transfers at
        the link rate, so the threshold is crossed within
        ``miss_threshold / link_bytes_per_cycle`` cycles of continuous
        offering.
        """
        cycles = math.ceil(self.miss_threshold / self.link_bytes_per_cycle)
        return math.ceil(cycles / self.slot_cycles)

    def retry_fire_ticks(self, deadline: int, retries: int) -> int:
        """Latest firing of retry ``retries``, ticks after the
        message's logical arrival: the first check waits the deadline
        plus margin, every later one doubles."""
        return (deadline + self.tc_margin_ticks) * (2 ** retries - 1)

    def retries_to_cover(self, d_orig: int, d_low: int) -> int:
        """Failed attempts a cut costs before a retry can succeed.

        Retry ``r`` fires no *earlier* than
        ``(d_orig + margin) + (d_low + margin) * (2**r - 2)`` ticks
        after the logical arrival (the first check uses the original
        bound, later timeouts the then-current channel deadline, so the
        smaller of original and detour bounds lower-bounds them).  The
        original attempt dies on the cut link; detection plus reroute
        completes by ``d_orig + detection_ticks``, so the first retry
        firing after that instant travels the detour and succeeds.
        """
        for retries in range(1, self.retransmit_limit + 2):
            earliest = ((d_orig + self.tc_margin_ticks)
                        + (d_low + self.tc_margin_ticks)
                        * (2 ** retries - 2))
            if earliest >= d_orig + self.detection_ticks:
                return retries
        return self.retransmit_limit + 1


@dataclass
class FaultVerdict:
    """The fault-aware prediction for one admitted channel."""

    label: str
    status: str                      # guaranteed / degraded-... / at-risk
    deadline: int
    #: The fault-free (refined) bound — what holds before any fault.
    fault_free_bound: int
    #: The recovery envelope: the bound that holds *through* the plan's
    #: worst case.  ``None`` only for at-risk channels.
    degraded_bound: Optional[int] = None
    #: Whether the plan touches this channel's route at all.
    affected: bool = False
    #: Structured at-risk reason slug (see module constants).
    reason: Optional[str] = None
    #: Human-oriented context: detour, retry accounting, consequence.
    detail: dict = field(default_factory=dict)
    #: Failed send attempts charged before a success.
    retries_needed: int = 0
    #: The detour the model re-admitted, as (node, port) hops (empty
    #: when the route survives the plan).
    detour_hops: list = field(default_factory=list)
    #: The detour's admitted end-to-end bound, ticks.
    detour_bound: Optional[int] = None

    @property
    def guaranteed_bound(self) -> Optional[int]:
        """The bound the chaos gate holds this channel to."""
        if self.status == AT_RISK:
            return None
        if self.affected:
            return self.degraded_bound
        return self.degraded_bound  # == fault-free bound when unaffected

    @property
    def degradation(self) -> Optional[int]:
        """Bound inflation over fault-free, ticks (0 when unaffected)."""
        if self.degraded_bound is None:
            return None
        return self.degraded_bound - self.fault_free_bound

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "status": self.status,
            "deadline": self.deadline,
            "fault_free_bound": self.fault_free_bound,
            "degraded_bound": self.degraded_bound,
            "degradation": self.degradation,
            "affected": self.affected,
            "reason": self.reason,
            "detail": dict(sorted(self.detail.items())),
            "retries_needed": self.retries_needed,
            "detour_hops": [[list(node), port]
                            for node, port in self.detour_hops],
            "detour_bound": self.detour_bound,
        }


@dataclass
class FaultAwareReport:
    """The fault model's verdict on a whole ``(Problem, FaultPlan)``."""

    topology: TopologySpec
    plan_signature: str
    #: The fault-free analysis the model degraded from.
    base: ScheduleReport
    #: One verdict per *admitted* channel, admission order.  Channels
    #: the fault-free analysis rejected never reach the fault model.
    verdicts: list[FaultVerdict]
    recovery: RecoveryModel

    def counts(self) -> dict:
        tally = {GUARANTEED: 0, DEGRADED_GUARANTEED: 0, AT_RISK: 0}
        for verdict in self.verdicts:
            tally[verdict.status] += 1
        return tally

    @property
    def at_risk(self) -> list[FaultVerdict]:
        return [v for v in self.verdicts if v.status == AT_RISK]

    @property
    def ok(self) -> bool:
        """Every demanded channel admitted and none left at risk."""
        return self.base.feasible and not self.at_risk

    def verdict_for(self, label: str) -> FaultVerdict:
        for verdict in self.verdicts:
            if verdict.label == label:
                return verdict
        raise KeyError(f"no fault verdict for channel {label!r}")

    def as_dict(self) -> dict:
        return {
            "topology": self.topology.to_dict(),
            "plan_signature": self.plan_signature,
            "base": self.base.as_dict(),
            "verdicts": [verdict.as_dict() for verdict in self.verdicts],
            "counts": self.counts(),
            "ok": self.ok,
            "recovery": {
                "miss_threshold": self.recovery.miss_threshold,
                "detection_ticks": self.recovery.detection_ticks,
                "tc_margin_ticks": self.recovery.tc_margin_ticks,
                "retransmit_limit": self.recovery.retransmit_limit,
            },
        }

    def signature(self) -> str:
        return hashlib.sha256(
            canonical_dumps(self.as_dict()).encode()).hexdigest()

    def summary_rows(self) -> list[tuple[str, str]]:
        counts = self.counts()
        return [
            ("admitted channels", str(len(self.verdicts))),
            ("guaranteed", str(counts[GUARANTEED])),
            ("degraded-guaranteed", str(counts[DEGRADED_GUARANTEED])),
            ("at-risk", str(counts[AT_RISK])),
            ("detection latency",
             f"{self.recovery.detection_ticks} ticks"),
            ("retry budget", str(self.recovery.retransmit_limit)),
        ]

    def verdict_rows(self) -> list[list[str]]:
        """Per-channel rows for the CLI verdict table."""
        rows = []
        for verdict in self.verdicts:
            degraded = ("-" if verdict.degraded_bound is None
                        else str(verdict.degraded_bound))
            rows.append([
                verdict.label,
                verdict.status,
                str(verdict.deadline),
                str(verdict.fault_free_bound),
                degraded,
                str(verdict.retries_needed),
                verdict.reason or "-",
            ])
        return rows


def _route_links(hops: Sequence[tuple]) -> set:
    """The cuttable (node, out_port) links of a hop list."""
    return {(node, port) for node, port in hops if port != RECEPTION}


def _corrupt_budgets(plan: FaultPlan) -> dict:
    """Total corruption/drop budget per link.

    Successive corrupt events on one link *replace* the corruptor
    (last write wins, unspent budget discarded — see
    ``FaultInjector._fire``), so summing the amounts over-counts; the
    sum is kept as the conservative per-link worst case.
    """
    budgets: dict[tuple, int] = {}
    for event in plan.events:
        if event.kind in (CORRUPT, DROP):
            link = (event.node, event.direction)
            budgets[link] = budgets.get(link, 0) + max(1, event.amount)
    return budgets


def _corrupt_attempts(links: set, budgets: dict, packets: int) -> int:
    """Failed attempts the route's corruptors can force."""
    return sum(math.ceil(budgets[link] / packets)
               for link in links if link in budgets)


def _at_risk(verdict: ChannelVerdict, demand: ChannelDemand, *,
             reason: str, detail: dict,
             retries: int = 0) -> FaultVerdict:
    return FaultVerdict(
        label=demand.label, status=AT_RISK, deadline=demand.deadline,
        fault_free_bound=verdict.refined_bound or verdict.predicted_bound,
        affected=True, reason=reason, detail=detail,
        retries_needed=retries,
    )


def _admit_detour_unicast(demand: ChannelDemand, state, avoid: set,
                          topology: TopologySpec):
    """Mirror of the recovery layer's unicast reroute.

    ``Network.recover_channel`` picks the shortest surviving path by
    BFS and ``ChannelManager.reroute`` admits the replacement *before*
    tearing the old path down (new connection ids are allocated while
    the old ones are still held).  The mirror does the same against
    the analysis state: admit the detour, allocate its ids, then
    release the original reservation.  Raises ``RouteError`` when no
    surviving path exists and ``AdmissionError`` when the detour fails
    re-admission (state is rolled back in both cases).
    """
    route = shortest_route_avoiding(
        topology.width, topology.height, demand.source,
        demand.destinations[0], failed=avoid, torus=topology.torus)
    admission = state.admission
    horizon = admission.params.default_horizon
    hops = [HopDescriptor(node=node, out_port=port, horizon=horizon)
            for node, port in route]
    reservation = admission.admit(hops, demand.spec(),
                                  demand.requirements())
    allocations: list[tuple[tuple[int, int], int]] = []
    try:
        for node, __ in route:
            allocations.append((node, state.ids.allocate(node)))
    except AdmissionError:
        state.ids.rollback(allocations)
        admission.release(reservation)
        raise
    old = state.reservations[demand.label]
    admission.release(old)
    # The old path's connection ids are deliberately *not* freed: the
    # allocator does not track them per channel, and holding them is
    # conservative (a detour can only be refused sooner, never admitted
    # where the real manager would refuse).
    state.reservations[demand.label] = reservation
    return route, reservation


def _admit_detour_multicast(demand: ChannelDemand, state, avoid: set,
                            topology: TopologySpec):
    """Mirror of ``ChannelManager.reroute_multicast`` (tree detour)."""
    ports_by_node, order = multicast_tree_avoiding(
        topology.width, topology.height, demand.source,
        list(demand.destinations), failed=avoid, torus=topology.torus)
    parents_map = tree_parents(ports_by_node, order)
    admission = state.admission
    horizon = admission.params.default_horizon

    hops: list[HopDescriptor] = []
    hop_parent: list[int] = []
    node_first_hop: dict[tuple[int, int], int] = {}
    for node in order:
        for port in sorted(ports_by_node[node]):
            parent_node = parents_map[node]
            parent_index = (node_first_hop[parent_node]
                            if parent_node is not None else -1)
            node_first_hop.setdefault(node, len(hops))
            hops.append(HopDescriptor(node=node, out_port=port,
                                      horizon=horizon))
            hop_parent.append(parent_index)

    depth: dict[tuple[int, int], int] = {}
    for node in order:
        parent = parents_map[node]
        depth[node] = 1 if parent is None else depth[parent] + 1
    tree_depth = max(depth.values()) if depth else 1

    d_min = admission.hop_overhead + 1
    d_cap = min(demand.i_min, admission.params.half_range - 1)
    uniform = min(d_cap, demand.deadline // tree_depth)
    if uniform < d_min:
        raise AdmissionError(
            f"deadline {demand.deadline} too tight for a depth-"
            f"{tree_depth} detour tree", reason="deadline-too-tight",
            demanded=d_min * tree_depth, available=demand.deadline)
    reservation = admission.admit(
        hops, demand.spec(), demand.requirements(),
        local_delays=[uniform] * len(hops), parents=hop_parent)
    try:
        state.ids.allocate_common(order)
    except AdmissionError:
        admission.release(reservation)
        raise
    admission.release(state.reservations[demand.label])
    state.reservations[demand.label] = reservation
    route = [(hop.node, hop.out_port) for hop in hops]
    return route, reservation, uniform * tree_depth


def analyze_with_faults(topology: TopologySpec,
                        demands: Sequence[ChannelDemand],
                        plan: FaultPlan, *,
                        params: Optional[RouterParams] = None,
                        adaptive: bool = True,
                        recovery: Optional[RecoveryModel] = None,
                        ) -> FaultAwareReport:
    """Degraded-but-guaranteed verdicts for a problem under a plan.

    Runs the fault-free analysis first, then replays the plan's worst
    case against the live admission mirror: every channel whose route
    crosses a cut link is re-admitted on its shortest surviving detour
    (in admission order — exactly the order the recovery controller
    walks the channel list), corruption budgets are charged as failed
    attempts, and the recovery envelope decides the verdict.  After all
    detours land, unaffected channels' refined bounds are re-checked
    against the *post-fault* load (a detour may share their reception
    link) so the guarantee covers the whole run, not just the pre-cut
    phase.
    """
    params = params or RouterParams()
    recovery = recovery or RecoveryModel.derive(params)
    base, state = _analyze_live(topology, demands, params=params,
                                adaptive=adaptive)
    avoid = plan.cut_links
    budgets = _corrupt_budgets(plan)
    cut_waves = len({event.cycle for event in plan.events
                     if event.kind == CUT})
    extra_waves = max(0, cut_waves - 1)

    demand_for = {demand.label: demand for demand in demands}
    admitted = [v for v in base.channels if v.feasible]
    verdicts: list[FaultVerdict] = []
    rerouted: list[tuple[FaultVerdict, ChannelDemand]] = []

    for verdict in admitted:
        demand = demand_for[verdict.label]
        packets = demand.spec().packets_per_message
        route_links = _route_links(verdict.hops)
        hit_by_cut = sorted(route_links & avoid)
        corrupt_attempts = _corrupt_attempts(route_links, budgets, packets)
        d_orig = verdict.predicted_bound

        if not hit_by_cut and not corrupt_attempts:
            bound = verdict.refined_bound or d_orig
            verdicts.append(FaultVerdict(
                label=demand.label, status=GUARANTEED,
                deadline=demand.deadline, fault_free_bound=bound,
                degraded_bound=bound, affected=False,
            ))
            continue

        if hit_by_cut:
            try:
                if len(demand.destinations) == 1:
                    route, reservation = _admit_detour_unicast(
                        demand, state, avoid, topology)
                    d_detour = sum(reservation.local_delays)
                else:
                    route, reservation, d_detour = _admit_detour_multicast(
                        demand, state, avoid, topology)
            except RouteError:
                verdicts.append(_at_risk(
                    verdict, demand, reason=NO_REROUTE_PATH,
                    detail={"cut_links": [[list(node), port] for
                                          node, port in hit_by_cut],
                            "consequence": "graceful-degradation"}))
                continue
            except AdmissionError as exc:
                verdicts.append(_at_risk(
                    verdict, demand, reason=NO_REROUTE_CAPACITY,
                    detail={"rejection": exc.details(),
                            "consequence": "graceful-degradation"}))
                continue
            detour_links = _route_links(route)
            corrupt_retries = _corrupt_attempts(
                route_links | detour_links, budgets, packets)
            retries = (recovery.retries_to_cover(
                d_orig, min(d_orig, d_detour)) + extra_waves
                + corrupt_retries)
            # Every message in flight when the link dies is lost, as is
            # anything sent during the detection window and anything a
            # corruptor eats: d_orig ticks of pipeline at one message
            # per i_min, plus the initial burst.
            lost = (math.ceil((d_orig + recovery.detection_ticks)
                              / demand.i_min)
                    + demand.b_max + corrupt_retries)
            d_final = d_detour
            d_eff = max(d_orig, d_detour)
        else:
            route, d_detour = [], None
            retries = corrupt_attempts
            lost = corrupt_attempts
            d_final = d_orig
            d_eff = d_orig

        if retries > recovery.retransmit_limit:
            verdicts.append(_at_risk(
                verdict, demand, reason=RETRY_BUDGET_EXHAUSTED,
                detail={"retries_needed": retries,
                        "retransmit_limit": recovery.retransmit_limit,
                        "consequence": "message-abandoned"},
                retries=retries))
            continue

        # A retransmission rides the channel's own reserved rate, so it
        # advances the logical-arrival clock by i_min just like a fresh
        # message: the last queued retransmit is pushed out by every
        # earlier retransmission plus any burst backlog before its copy
        # finally travels the surviving route within d_final.
        resends = lost * max(retries, 1)
        envelope = (recovery.retry_fire_ticks(d_eff, retries)
                    + (demand.b_max - 1 + resends) * demand.i_min
                    + d_final + 1)
        status = (GUARANTEED if envelope <= demand.deadline
                  else DEGRADED_GUARANTEED)
        fault_verdict = FaultVerdict(
            label=demand.label, status=status, deadline=demand.deadline,
            fault_free_bound=verdict.refined_bound or d_orig,
            degraded_bound=envelope, affected=True,
            detail={"cut_links": [[list(node), port]
                                  for node, port in hit_by_cut],
                    "d_eff": d_eff, "d_final": d_final,
                    "lost": lost, "resends": resends},
            retries_needed=retries,
            detour_hops=list(route), detour_bound=d_detour,
        )
        verdicts.append(fault_verdict)
        rerouted.append((fault_verdict, demand))

    # Post-fault refinement: detours changed the load set, which can
    # widen an unaffected channel's last-hop response.  Hold every
    # unaffected guarantee to the *worse* of the pre- and post-fault
    # refined bounds.
    for fault_verdict in verdicts:
        if fault_verdict.affected or fault_verdict.status == AT_RISK:
            continue
        demand = demand_for[fault_verdict.label]
        if len(demand.destinations) != 1:
            continue
        reservation = state.reservations[fault_verdict.label]
        last_hop = reservation.hops[-1]
        own = reservation.loads[-1]
        schedule = state.admission.link(last_hop.node, last_hop.out_port)
        response = edf_response_bound(schedule.loads, own.deadline)
        raw = base.verdict_for(fault_verdict.label).predicted_bound
        refined_post = min(raw, raw - reservation.local_delays[-1]
                           + state.admission.hop_overhead + response)
        bound = max(fault_verdict.fault_free_bound, refined_post)
        fault_verdict.fault_free_bound = bound
        fault_verdict.degraded_bound = bound

    return FaultAwareReport(
        topology=topology, plan_signature=plan.signature(), base=base,
        verdicts=verdicts, recovery=recovery,
    )


def analyze_problem_with_faults(problem: Problem, plan: FaultPlan, *,
                                params: Optional[RouterParams] = None,
                                adaptive: bool = True,
                                recovery: Optional[RecoveryModel] = None,
                                ) -> FaultAwareReport:
    """:func:`analyze_with_faults` over a :class:`Problem`."""
    return analyze_with_faults(problem.topology, problem.channels, plan,
                               params=params, adaptive=adaptive,
                               recovery=recovery)
