"""Analytic schedulability engine: predict, then validate by campaign.

The subsystem answers "will this channel set be admitted, and what is
each channel's worst-case latency?" without running a simulated cycle
(:func:`analyze`), and backs every bound with a predict-then-measure
harness that drives the simulator adversarially and reports the
tightness gap (:func:`measure_tightness`).  See
``docs/schedulability.md`` for the model and verdict schema.
"""

from repro.schedulability.engine import (LOAD_INDEPENDENT_REASONS,
                                         ChannelVerdict, ScheduleReport,
                                         analyze, predict_admission)
from repro.schedulability.prefilter import (PREFILTERS, prefilter_verdict,
                                            register_prefilter)
from repro.schedulability.spec import (I_MIN_CHOICES, ChannelDemand,
                                       Problem, TopologySpec,
                                       adversarial_channel_demands,
                                       demands_for_requests,
                                       random_channel_demands)
from repro.schedulability.validate import (ChannelTightness,
                                           TightnessReport,
                                           drive_worst_case,
                                           measure_tightness)

__all__ = [
    "I_MIN_CHOICES",
    "LOAD_INDEPENDENT_REASONS",
    "PREFILTERS",
    "ChannelDemand",
    "ChannelTightness",
    "ChannelVerdict",
    "Problem",
    "ScheduleReport",
    "TightnessReport",
    "TopologySpec",
    "adversarial_channel_demands",
    "analyze",
    "demands_for_requests",
    "drive_worst_case",
    "measure_tightness",
    "predict_admission",
    "prefilter_verdict",
    "random_channel_demands",
    "register_prefilter",
]
