"""Analytic schedulability engine: predict, then validate by campaign.

The subsystem answers "will this channel set be admitted, and what is
each channel's worst-case latency?" without running a simulated cycle
(:func:`analyze`), and backs every bound with a predict-then-measure
harness that drives the simulator adversarially and reports the
tightness gap (:func:`measure_tightness`).  A fault-aware layer
(:func:`analyze_with_faults`) re-derives each admitted channel's
verdict under an explicit :class:`~repro.faults.plan.FaultPlan` —
guaranteed, degraded-guaranteed with a quantified recovery envelope,
or at-risk with a structured reason — and
:func:`measure_chaos_tightness` validates those envelopes against a
real fault-injected run.  See ``docs/schedulability.md`` for the model
and verdict schema.
"""

from repro.schedulability.engine import (LOAD_INDEPENDENT_REASONS,
                                         ChannelVerdict, ScheduleReport,
                                         analyze, edf_response_bound,
                                         predict_admission)
from repro.schedulability.faultmodel import (AT_RISK, DEGRADED_GUARANTEED,
                                             GUARANTEED,
                                             NO_REROUTE_CAPACITY,
                                             NO_REROUTE_PATH,
                                             RETRY_BUDGET_EXHAUSTED,
                                             FaultAwareReport,
                                             FaultVerdict, RecoveryModel,
                                             analyze_problem_with_faults,
                                             analyze_with_faults)
from repro.schedulability.prefilter import (PREFILTERS, prefilter_verdict,
                                            register_prefilter)
from repro.schedulability.spec import (I_MIN_CHOICES, ChannelDemand,
                                       Problem, TopologySpec,
                                       adversarial_channel_demands,
                                       demands_for_requests,
                                       random_channel_demands)
from repro.schedulability.validate import (ChannelTightness,
                                           ChaosChannelTightness,
                                           ChaosTightnessReport,
                                           TightnessReport,
                                           drive_chaos,
                                           drive_worst_case,
                                           measure_chaos_tightness,
                                           measure_tightness)

__all__ = [
    "AT_RISK",
    "DEGRADED_GUARANTEED",
    "GUARANTEED",
    "I_MIN_CHOICES",
    "LOAD_INDEPENDENT_REASONS",
    "NO_REROUTE_CAPACITY",
    "NO_REROUTE_PATH",
    "PREFILTERS",
    "RETRY_BUDGET_EXHAUSTED",
    "ChannelDemand",
    "ChannelTightness",
    "ChannelVerdict",
    "ChaosChannelTightness",
    "ChaosTightnessReport",
    "FaultAwareReport",
    "FaultVerdict",
    "Problem",
    "RecoveryModel",
    "ScheduleReport",
    "TightnessReport",
    "TopologySpec",
    "adversarial_channel_demands",
    "analyze",
    "analyze_problem_with_faults",
    "analyze_with_faults",
    "demands_for_requests",
    "drive_chaos",
    "drive_worst_case",
    "edf_response_bound",
    "measure_chaos_tightness",
    "measure_tightness",
    "predict_admission",
    "prefilter_verdict",
    "random_channel_demands",
    "register_prefilter",
]
