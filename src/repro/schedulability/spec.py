"""Problem descriptions for the analytic schedulability engine.

A schedulability *problem* is a mesh topology plus an ordered list of
channel demands — everything :func:`repro.schedulability.engine.analyze`
needs to predict admission outcomes and worst-case bounds without
running a simulated cycle.  Both layers are frozen and JSON-round-trip
cleanly, so problems can be written by hand, exported from sweeps, and
fed to the ``analyze`` CLI subcommand.

The demand generators mirror the campaign workloads draw for draw:
:func:`random_channel_demands` reproduces the ``random`` workload's
admission stream exactly (same derived substream, same per-channel
draw order), so an analytic verdict on the generated set predicts what
the simulator will admit.  :func:`adversarial_channel_demands` is the
tightness campaign's stress generator: multi-packet messages and burst
allowances on top of the same deadline recipe, which saturates links
far sooner and produces provably-infeasible sweep cells.
"""

from __future__ import annotations

import json
import pathlib
import random
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.campaign.spec import derive_seed
from repro.channels.spec import FlowRequirements, TrafficSpec
from repro.core.params import TC_PAYLOAD_BYTES

#: The i_min draw set shared with the campaign workload generators.
I_MIN_CHOICES = (6, 10, 16, 24)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class TopologySpec:
    """The fabric a problem runs on: a ``width x height`` mesh."""

    width: int
    height: int
    torus: bool = False

    def __post_init__(self) -> None:
        _require(isinstance(self.width, int)
                 and isinstance(self.height, int),
                 "mesh dimensions must be integers")
        _require(self.width >= 1 and self.height >= 1,
                 "mesh dimensions must be positive")
        _require(isinstance(self.torus, bool),
                 "torus must be a boolean")

    def to_dict(self) -> dict:
        return {"width": self.width, "height": self.height,
                "torus": self.torus}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TopologySpec":
        _require(isinstance(data, Mapping),
                 "topology must be a JSON object")
        known = {"width", "height", "torus"}
        unknown = sorted(set(data) - known)
        _require(not unknown, f"unknown topology fields: {unknown}")
        _require("width" in data and "height" in data,
                 "topology needs width and height")
        return cls(width=data["width"], height=data["height"],  # type: ignore[arg-type]
                   torus=data.get("torus", False))  # type: ignore[arg-type]


@dataclass(frozen=True)
class ChannelDemand:
    """One requested real-time channel, as the engine consumes it.

    ``destinations`` usually holds one node (unicast); more than one
    describes a multicast tree.  ``deadline`` is the end-to-end bound
    ``D`` in ticks.
    """

    label: str
    source: tuple[int, int]
    destinations: tuple[tuple[int, int], ...]
    i_min: int
    deadline: int
    s_max: int = TC_PAYLOAD_BYTES
    b_max: int = 1

    def __post_init__(self) -> None:
        _require(bool(self.label) and isinstance(self.label, str),
                 "channel demand needs a non-empty label")
        _require(len(self.destinations) >= 1,
                 "channel demand needs at least one destination")
        for node in (self.source, *self.destinations):
            _require(isinstance(node, tuple) and len(node) == 2
                     and all(isinstance(c, int) for c in node),
                     f"node must be an (x, y) pair, got {node!r}")
        for name in ("i_min", "deadline", "s_max", "b_max"):
            value = getattr(self, name)
            _require(isinstance(value, int) and value >= 1,
                     f"{name} must be a positive integer, "
                     f"got {value!r}")

    def spec(self) -> TrafficSpec:
        return TrafficSpec(i_min=self.i_min, s_max=self.s_max,
                           b_max=self.b_max)

    def requirements(self) -> FlowRequirements:
        return FlowRequirements(deadline=self.deadline)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "source": list(self.source),
            "destinations": [list(node) for node in self.destinations],
            "i_min": self.i_min,
            "deadline": self.deadline,
            "s_max": self.s_max,
            "b_max": self.b_max,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ChannelDemand":
        _require(isinstance(data, Mapping),
                 "channel demand must be a JSON object")
        known = {"label", "source", "destinations", "i_min", "deadline",
                 "s_max", "b_max"}
        unknown = sorted(set(data) - known)
        _require(not unknown, f"unknown channel fields: {unknown}")
        for field_name in ("label", "source", "destinations", "i_min",
                           "deadline"):
            _require(field_name in data,
                     f"channel demand needs {field_name!r}")

        def node_of(value: object) -> tuple[int, int]:
            _require(isinstance(value, (list, tuple)) and len(value) == 2,
                     f"node must be an (x, y) pair, got {value!r}")
            return (value[0], value[1])  # type: ignore[index]

        destinations = data["destinations"]
        _require(isinstance(destinations, (list, tuple)),
                 "destinations must be a list of nodes")
        return cls(
            label=data["label"],  # type: ignore[arg-type]
            source=node_of(data["source"]),
            destinations=tuple(node_of(node) for node in destinations),
            i_min=data["i_min"],  # type: ignore[arg-type]
            deadline=data["deadline"],  # type: ignore[arg-type]
            s_max=data.get("s_max", TC_PAYLOAD_BYTES),  # type: ignore[arg-type]
            b_max=data.get("b_max", 1),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class Problem:
    """A topology plus an ordered channel demand list."""

    topology: TopologySpec
    channels: tuple[ChannelDemand, ...]

    def to_dict(self) -> dict:
        return {
            "topology": self.topology.to_dict(),
            "channels": [demand.to_dict() for demand in self.channels],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Problem":
        _require(isinstance(data, Mapping),
                 "schedulability problem must be a JSON object")
        known = {"topology", "channels"}
        unknown = sorted(set(data) - known)
        _require(not unknown, f"unknown problem fields: {unknown}")
        _require("topology" in data, "problem needs a topology")
        channels = data.get("channels", [])
        _require(isinstance(channels, (list, tuple)),
                 "channels must be a list")
        demands = tuple(ChannelDemand.from_dict(entry)
                        for entry in channels)
        labels = [demand.label for demand in demands]
        duplicates = sorted({label for label in labels
                             if labels.count(label) > 1})
        _require(not duplicates,
                 f"duplicate channel labels: {duplicates}")
        return cls(topology=TopologySpec.from_dict(data["topology"]),  # type: ignore[arg-type]
                   channels=demands)

    @classmethod
    def from_json(cls, text: str) -> "Problem":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid problem JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> "Problem":
        return cls.from_json(pathlib.Path(path).read_text())

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path


# ---------------------------------------------------------------------------
# Demand generators shared with the campaign workloads
# ---------------------------------------------------------------------------

def _mesh(width: int, height: int, torus: bool):
    from repro.network.topology import Mesh

    return Mesh(width, height, torus=torus)


def random_channel_demands(width: int, height: int, channels: int,
                           seed: int, *,
                           torus: bool = False) -> list[ChannelDemand]:
    """The ``random`` workload's admission stream, as demand objects.

    Draw-for-draw identical to
    :func:`repro.campaign.workloads.build_random_workload`: the same
    derived substream (``derive_seed(seed, "admit")``), the same
    per-channel ``sample``/``choice`` order, the same deadline recipe —
    so analysing this list predicts exactly what that workload's
    simulator admits.
    """
    mesh = _mesh(width, height, torus)
    rng = random.Random(derive_seed(seed, "admit"))
    nodes = list(mesh.nodes())
    demands = []
    for index in range(channels):
        src, dst = rng.sample(nodes, 2)
        i_min = rng.choice(list(I_MIN_CHOICES))
        deadline = i_min * (mesh.hop_distance(src, dst) + 1) + 10
        demands.append(ChannelDemand(
            label=f"rand-{index}", source=src, destinations=(dst,),
            i_min=i_min, deadline=deadline,
        ))
    return demands


def adversarial_channel_demands(width: int, height: int, channels: int,
                                seed: int, *,
                                torus: bool = False
                                ) -> list[ChannelDemand]:
    """Worst-case-leaning demand sets for the tightness campaign.

    Same topology/deadline recipe as the random stream but from its own
    substream (``derive_seed(seed, "adversarial")``) with multi-packet
    messages and burst allowances mixed in — per-link demand grows two
    to four times faster per channel, so sweeping the channel count
    quickly crosses into provable infeasibility.
    """
    mesh = _mesh(width, height, torus)
    rng = random.Random(derive_seed(seed, "adversarial"))
    nodes = list(mesh.nodes())
    demands = []
    for index in range(channels):
        src, dst = rng.sample(nodes, 2)
        i_min = rng.choice(list(I_MIN_CHOICES))
        b_max = rng.choice([1, 2])
        s_max = rng.choice([TC_PAYLOAD_BYTES, 2 * TC_PAYLOAD_BYTES])
        deadline = i_min * (mesh.hop_distance(src, dst) + 1) + 10
        demands.append(ChannelDemand(
            label=f"adv-{index}", source=src, destinations=(dst,),
            i_min=i_min, deadline=deadline, s_max=s_max, b_max=b_max,
        ))
    return demands


def demands_for_requests(requests: Sequence) -> list[ChannelDemand]:
    """Channel demands for a churn workload's TC requests.

    Accepts :class:`repro.service.workload.ChannelRequest` objects;
    best-effort requests carry no guarantee and are skipped.
    """
    return [
        ChannelDemand(
            label=request.label, source=request.source,
            destinations=(request.destination,), i_min=request.i_min,
            deadline=request.deadline_ticks,
        )
        for request in requests if request.traffic_class == "TC"
    ]
