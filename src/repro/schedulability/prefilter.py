"""Campaign pre-filtering: skip provably-infeasible sweep cells.

A prefilter maps a :class:`~repro.campaign.spec.RunConfig` to either
``None`` (run the cell) or a verdict dict explaining why the cell is
analytically infeasible (skip it).  The campaign runner consults the
registry on every cache miss and records skips in the report — they
are never silently dropped (see ``CampaignReport.infeasible``).

Only workloads with a registered prefilter are ever filtered; the
default workloads stay untouched.  A verdict must be a pure function
of the config so the decision is identical across runner invocations,
shard counts and resumes.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.campaign.spec import RunConfig

#: workload name -> prefilter callable.
PREFILTERS: dict[str, Callable[[RunConfig], Optional[dict]]] = {}


def register_prefilter(name: str,
                       fn: Callable[[RunConfig], Optional[dict]]) -> None:
    """Register ``fn`` as the feasibility pre-filter for workload
    ``name`` (replacing any previous registration)."""
    PREFILTERS[name] = fn


def prefilter_verdict(config: RunConfig) -> Optional[dict]:
    """The registered verdict for ``config``; ``None`` means run it."""
    fn = PREFILTERS.get(config.workload)
    if fn is None:
        return None
    return fn(config)


def _adversarial_prefilter(config: RunConfig) -> Optional[dict]:
    """Analyse the adversarial demand set before paying for simulation.

    The adversarial workload treats any analytic rejection as an
    infeasible cell: its whole point is measuring tightness on fully
    admitted sets, so a cell whose demand list cannot be admitted in
    full carries no signal worth simulating.
    """
    from repro.schedulability.engine import analyze
    from repro.schedulability.spec import (TopologySpec,
                                           adversarial_channel_demands)

    demands = adversarial_channel_demands(
        config.width, config.height, config.channels, config.seed,
        torus=config.torus)
    report = analyze(
        TopologySpec(config.width, config.height, torus=config.torus),
        demands)
    if not report.rejected:
        return None
    return {
        "reason": "analytically infeasible channel set",
        "rejected": report.rejected,
        "total": len(report.channels),
        "reject_reasons": report.reject_reasons,
    }


def _chaos_tightness_prefilter(config: RunConfig) -> Optional[dict]:
    """Skip cells the fault model already refuses to guarantee.

    The chaos-tightness workload gates ``observed <= predicted`` for
    every guaranteed and degraded-guaranteed channel; a cell whose base
    problem is analytically infeasible, or whose fault plan leaves
    channels at risk (no reroute path, no reroute capacity, retry
    budget exhausted), has no envelope to validate.  The skip verdict
    records the at-risk labels and reasons so the decision is auditable
    in the campaign report, never silent.
    """
    from repro.campaign.workloads import chaos_tightness_inputs
    from repro.schedulability.faultmodel import analyze_with_faults

    topology, demands, plan = chaos_tightness_inputs(config)
    report = analyze_with_faults(topology, demands, plan)
    if report.ok:
        return None
    at_risk = [{"label": verdict.label, "reason": verdict.reason}
               for verdict in report.at_risk]
    return {
        "reason": ("fault plan leaves channels at risk" if at_risk
                   else "analytically infeasible channel set"),
        "rejected": report.base.rejected,
        "total": len(report.base.channels),
        "reject_reasons": report.base.reject_reasons,
        "at_risk": at_risk,
        "plan_signature": report.plan_signature,
    }


register_prefilter("adversarial", _adversarial_prefilter)
register_prefilter("chaos-tightness", _chaos_tightness_prefilter)
