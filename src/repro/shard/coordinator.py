"""Worker lifecycle for sharded runs: fork, coordinate, retry.

The coordinating process builds the all-pairs pipe mesh, forks one
child per non-zero rank, and then *becomes* worker 0 itself — so the
caller gets rank 0's fully-synced result back in-process, with no
result pickling.  Children inherit the closed-over run inputs (config,
plan, store) through the fork; nothing is ever serialised between
processes except the per-cycle barrier payloads.

Failure handling reuses the checkpoint/resume machinery: if any peer
dies mid-window (:class:`~repro.shard.transport.ShardPeerLost`), the
coordinator kills the remaining children and retries the whole run.
With a checkpoint store attached, each attempt resumes from the last
*coordinated* checkpoint — rank 0 resolves ``store.latest()`` and
broadcasts the decision before any worker constructs its session, so
every worker restores the same document.  Without a store, a retry
simply replays from the start (the run is deterministic either way).
"""

from __future__ import annotations

import multiprocessing
import sys
from typing import Callable, Optional

from repro.shard.transport import (
    ShardLinks,
    ShardPeerLost,
    ShardTransport,
    ShardWorld,
)

#: Child exit code for "a peer died" (expected during recovery drills).
PEER_LOST_EXIT = 17


class ShardRunFailed(RuntimeError):
    """A sharded run could not be completed (retries exhausted, or a
    worker failed for a reason recovery cannot paper over)."""


def _child_main(links: ShardLinks, rank: int, size: int,
                worker_fn: Callable) -> None:
    links.prune_to(rank)
    world = ShardWorld(rank, size, links.endpoint(rank))
    try:
        worker_fn(world)
    except ShardPeerLost as exc:
        print(f"shard worker {rank}: {exc}", file=sys.stderr)
        sys.exit(PEER_LOST_EXIT)
    finally:
        world.transport.close()


def coordinate(shards: int, worker_fn: Callable, *,
               max_attempts: int = 3, ctx=None):
    """Run ``worker_fn(world)`` across ``shards`` workers; return rank
    0's result.

    ``worker_fn`` must be fork-safe and *deterministic given its
    closure plus the world*: every worker executes it with identical
    inputs, differing only in ``world.rank``.  With ``shards == 1`` it
    runs inline with an empty transport (no processes, no pipes).
    """
    if shards < 1:
        raise ValueError("shards must be positive")
    if max_attempts < 1:
        raise ValueError("max_attempts must be positive")
    if shards == 1:
        return worker_fn(ShardWorld(0, 1, ShardTransport(0, 1, {})))
    if ctx is None:
        ctx = multiprocessing.get_context("fork")

    last_loss: Optional[ShardPeerLost] = None
    for __ in range(max_attempts):
        links = ShardLinks(shards, ctx)
        children = [
            ctx.Process(target=_child_main,
                        args=(links, rank, shards, worker_fn),
                        daemon=True)
            for rank in range(1, shards)
        ]
        for child in children:
            child.start()
        links.prune_to(0)
        world = ShardWorld(0, shards, links.endpoint(0))
        try:
            result = worker_fn(world)
        except ShardPeerLost as exc:
            last_loss = exc
            for child in children:
                child.terminate()
            for child in children:
                child.join(30)
            world.transport.close()
            continue
        world.transport.close()
        failed = []
        for child in children:
            child.join(60)
            if child.exitcode != 0:
                failed.append((child.pid, child.exitcode))
        if failed:
            raise ShardRunFailed(
                f"worker(s) exited non-zero after rank 0 finished: "
                f"{failed}")
        return result
    raise ShardRunFailed(
        f"sharded run failed after {max_attempts} attempts "
        f"(last lost peer: {last_loss.peer if last_loss else '?'})"
    ) from last_loss


# ---------------------------------------------------------------------------
# Session entry points (chaos soak, random workload, service churn)
# ---------------------------------------------------------------------------

def _resume_path(world: ShardWorld, store) -> Optional[str]:
    """Rank 0 resolves the resume checkpoint; everyone agrees on it."""
    path = None
    if world.rank == 0:
        latest = store.latest()
        path = None if latest is None else str(latest)
    if world.size > 1:
        path = world.transport.broadcast_from(0, path)
    return path


def _worker_store(world: ShardWorld, store):
    """Rank 0 keeps the real (full-state) store; other workers write
    per-shard slice documents beside it."""
    if store is None or world.rank == 0:
        return store
    from repro.shard.runtime import ShardPartStore

    return ShardPartStore(store.directory, world.rank, store.fingerprint)


def run_chaos_sharded(config, plan=None, *, shards: Optional[int] = None,
                      check_every: Optional[int] = None,
                      store=None, interval: Optional[int] = None,
                      max_attempts: int = 3):
    """The sharded counterpart of :func:`repro.faults.run_chaos_soak`.

    Byte-identical to the single-process run: same report signature,
    counters, records and trace.  Resumes from ``store``'s latest
    checkpoint when one exists (which is also how a killed worker is
    recovered mid-run).
    """
    import dataclasses

    from repro.checkpoint.sessions import (
        DEFAULT_CHECKPOINT_INTERVAL,
        ChaosSession,
        default_chaos_plan,
    )

    if shards is None:
        shards = getattr(config, "shards", 1)
    if config.engine != "event":
        config = dataclasses.replace(config, engine="event")
    if plan is None:
        plan = default_chaos_plan(config)
    if interval is None:
        interval = DEFAULT_CHECKPOINT_INTERVAL

    def worker(world: ShardWorld):
        shard_world = world if world.size > 1 else None
        path = None if store is None else _resume_path(world, store)
        if path is None:
            session = ChaosSession(config, plan=plan,
                                   check_every=check_every,
                                   shard_world=shard_world)
        else:
            document = store.load(path)
            session = ChaosSession.restore(
                config, document["state"], plan=plan,
                check_every=check_every, shard_world=shard_world)
        return session.run(store=_worker_store(world, store),
                           interval=interval)

    return coordinate(shards, worker, max_attempts=max_attempts)


def run_random_sharded(width: int, height: int, channels: int,
                       ticks: int, seed: int, *, shards: int,
                       check_every: int = 0, store=None,
                       interval: Optional[int] = None,
                       max_attempts: int = 3):
    """Run the random admitted workload sharded; returns rank 0's
    finished :class:`~repro.checkpoint.sessions.RandomWorkloadSession`
    (its network carries the full synced final state)."""
    from repro.checkpoint.sessions import (
        DEFAULT_CHECKPOINT_INTERVAL,
        RandomWorkloadSession,
    )

    if interval is None:
        interval = DEFAULT_CHECKPOINT_INTERVAL

    def worker(world: ShardWorld):
        shard_world = world if world.size > 1 else None
        path = None if store is None else _resume_path(world, store)
        if path is None:
            session = RandomWorkloadSession(
                width, height, channels, ticks, seed,
                check_every=check_every, engine="event",
                shard_world=shard_world)
        else:
            document = store.load(path)
            session = RandomWorkloadSession.restore(
                width, height, channels, ticks, seed,
                document["state"], check_every=check_every,
                engine="event", shard_world=shard_world)
        session.run(store=_worker_store(world, store), interval=interval)
        return session

    return coordinate(shards, worker, max_attempts=max_attempts)


def run_service_sharded(config, *, shards: Optional[int] = None,
                        check_every: int = 0, store=None,
                        interval: Optional[int] = None,
                        max_attempts: int = 3):
    """The sharded counterpart of :func:`repro.service.run_service`;
    returns the identical :class:`~repro.service.slo.SLOReport`."""
    import dataclasses

    from repro.checkpoint.sessions import DEFAULT_CHECKPOINT_INTERVAL
    from repro.service.session import ServiceSession

    if shards is None:
        shards = getattr(config, "shards", 1)
    if config.engine != "event":
        config = dataclasses.replace(config, engine="event")
    if interval is None:
        interval = DEFAULT_CHECKPOINT_INTERVAL

    def worker(world: ShardWorld):
        shard_world = world if world.size > 1 else None
        path = None if store is None else _resume_path(world, store)
        if path is None:
            session = ServiceSession(config, check_every=check_every,
                                     shard_world=shard_world)
        else:
            document = store.load(path)
            session = ServiceSession.restore(
                config, document["state"], check_every=check_every,
                shard_world=shard_world)
        return session.run(store=_worker_store(world, store),
                           interval=interval)

    return coordinate(shards, worker, max_attempts=max_attempts)
