"""Partitioning a mesh into per-process shards along column cuts.

Every link in the fabric has a deterministic one-cycle latency (a
router's output signal this cycle becomes its neighbour's input signal
next cycle), which is exactly the lookahead a conservative parallel
discrete-event window needs: no worker can observe a neighbouring
worker's cycle-``c`` output before cycle ``c + 1``, so exchanging
boundary signals once per executed cycle is sufficient for
byte-identical simulation.  The partition is therefore purely a
question of *ownership*: which worker steps which routers, and which
links cross a cut.

Shards are contiguous column strips (near-equal widths, remainder
spread over the leftmost strips).  Column strips keep the cut surface
minimal for the row-major meshes the campaigns sweep, and make
ownership a one-array lookup on ``x``.  On a torus the wrap links
between the first and last strip are boundary links too.
"""

from __future__ import annotations

from repro.network.topology import Mesh

Node = tuple[int, int]
Link = tuple[Node, int]


class ShardPlan:
    """Ownership map of one mesh across ``shards`` workers."""

    def __init__(self, mesh: Mesh, shards: int) -> None:
        if shards < 1:
            raise ValueError("shard count must be positive")
        if shards > mesh.width:
            raise ValueError(
                f"cannot cut a {mesh.width}-column mesh into {shards} "
                "column strips"
            )
        self.mesh = mesh
        self.shards = shards
        base, extra = divmod(mesh.width, shards)
        self._strip_of_column: list[int] = []
        for strip in range(shards):
            width = base + (1 if strip < extra else 0)
            self._strip_of_column.extend([strip] * width)
        #: sink node of every directed link (incl. torus wrap links).
        self.sink_of: dict[Link, Node] = {
            (node, direction): neighbor
            for node, direction, neighbor in mesh.links()
        }
        #: directed links whose source and sink live on different
        #: workers — the cut surface the runtime exchanges each cycle.
        self.boundary_links: frozenset[Link] = frozenset(
            (node, direction)
            for (node, direction), neighbor in self.sink_of.items()
            if self.owner(node) != self.owner(neighbor)
        )

    def owner(self, node: Node) -> int:
        """The worker rank that steps ``node``'s router."""
        return self._strip_of_column[node[0]]

    def owned_nodes(self, rank: int) -> list[Node]:
        """The nodes whose routers ``rank`` steps, in mesh order."""
        return [node for node in self.mesh.nodes()
                if self.owner(node) == rank]

    def boundary_out(self, rank: int) -> frozenset[Link]:
        """Boundary links whose *source* router ``rank`` owns."""
        return frozenset(link for link in self.boundary_links
                         if self.owner(link[0]) == rank)
