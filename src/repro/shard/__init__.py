"""Sharded execution: partition one mesh simulation across processes.

See ``docs/sharding.md``.  The mesh is cut into contiguous column
strips (:class:`ShardPlan`); each worker steps only its strip's
routers while all replicated control software runs everywhere, and two
per-cycle barriers over pre-forked pipes keep every worker's view of
the world byte-identical to the single-process simulation.
"""

from repro.shard.coordinator import (
    ShardRunFailed,
    coordinate,
    run_chaos_sharded,
    run_random_sharded,
    run_service_sharded,
)
from repro.shard.partition import ShardPlan
from repro.shard.runtime import (
    ShardPartStore,
    ShardRuntime,
    install_shard_runtime,
)
from repro.shard.transport import (
    ShardLinks,
    ShardPeerLost,
    ShardTransport,
    ShardWorld,
)

__all__ = [
    "ShardLinks",
    "ShardPartStore",
    "ShardPeerLost",
    "ShardPlan",
    "ShardRunFailed",
    "ShardRuntime",
    "ShardTransport",
    "ShardWorld",
    "coordinate",
    "install_shard_runtime",
    "run_chaos_sharded",
    "run_random_sharded",
    "run_service_sharded",
]
