"""Sharded execution of one mesh: SPMD replication + boundary barriers.

Every worker deterministically constructs the *entire* session —
network, channels, workloads, fault plan, watchers — so all control
software (hosts, channel managers, recovery controllers, watchdogs,
fault injectors, admission, RNG streams, packet-id counters) runs
replicated and stays byte-identical everywhere for free.  Only the
*routers* are partitioned: each worker steps the routers of its
:class:`~repro.shard.partition.ShardPlan` strip and marks the rest
inert (`SynchronousEngine.set_inert`), so the expensive per-cycle
data-path work is divided while the cheap replicated control flow
keeps every worker's view of "the rest of the world" exact.

Two barriers per executed cycle keep the replicas converged:

* **Barrier A** — an engine component registered immediately after the
  network (so it fires after every host/router, before any watcher):
  all-exchanges the cycle's delivery-log appends.  Each worker replays
  the foreign deliveries through the real ``DeliveryLog.add`` (dummy
  packet carrying the shipped meta — explicit ids, so the replicated
  packet-id counter is untouched) and re-sorts the cycle's record tail
  into host-registration order, the order a single process would have
  appended in.  Watchers stepping later in the same cycle therefore
  read the exact single-process log.

* **Barrier B** — the engine's ``post_wiring_hook``: exchanges
  boundary link writes (to the sink's owner only — third-party
  replicas stay untouched so their routers remain provably idle), link
  monitor values, the monitor-miss epoch delta, spoofed drain-ack
  bookkeeping, and the cycle's router-origin trace events; then
  applies the owed drain acks for *owned* links (the single-process
  source-less wiring, owned-filtered, moved after the boundary writes
  so its genuine-ack guard sees the converged inputs).

The lock-step window is one executed cycle — the minimum cut-link
latency, every link being one cycle — and workers advance
*independently between* executed cycles: the coordinated run loop
min-reduces each worker's local event horizon and jumps the shared
clock exactly as far as a single event engine would.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.checkpoint.codec import LoadContext, SaveContext
from repro.checkpoint.store import CHECKPOINT_FORMAT, canonical_dumps
from repro.core.packet import BestEffortPacket, TimeConstrainedPacket
from repro.core.ports import OPPOSITE
from repro.core.router import LinkSignal
from repro.observability.trace import DELIVER, PacketTracer
from repro.shard.partition import ShardPlan
from repro.shard.transport import ShardWorld

#: Monitor fields exchanged by value (same order as the checkpoint).
_MONITOR_FIELDS = ("missed_transfers", "bytes_lost", "bytes_drained",
                   "bytes_corrupted", "packets_dropped",
                   "be_lost_uncompensated")


def _monitor_values(monitor) -> tuple:
    return tuple(getattr(monitor, name) for name in _MONITOR_FIELDS)


def _apply_monitor(monitor, values) -> None:
    for name, value in zip(_MONITOR_FIELDS, values):
        setattr(monitor, name, value)


class _ShardTracer(PacketTracer):
    """Tracer that defers in-step emissions to the cycle barrier.

    Emissions from inside a component step are tagged with the
    stepping component's registration order plus a per-origin sequence
    and buffered; barrier B merges all workers' buffers in
    ``(origin, seq)`` order — which is exactly the order a single
    process would have emitted in, since its batch pops components in
    ascending registration order and wiring emits nothing.  Emissions
    from outside any step (session loops, controllers between runs)
    pass straight through: they are replicated on every worker.
    """

    def __init__(self, capacity: int, runtime: "ShardRuntime") -> None:
        super().__init__(capacity)
        self._runtime = runtime

    def emit_raw(self, item: tuple) -> None:
        order = self._runtime.engine.stepping_order
        if order is None:
            super().emit_raw(item)
        else:
            self._runtime.buffer_trace(order, item)

    def flush_raw(self, item: tuple) -> None:
        """Ring-append one merged event (barrier B only)."""
        super().emit_raw(item)


class _DeliveryBarrier:
    """Barrier A as an engine component (see module docstring).

    Registered right after the network's hosts and routers, so on any
    executed cycle it fires after every delivery of that cycle and
    before any watcher reads the log.  ``next_event_cycle`` is
    ``None``: the coordinated run loop schedules it explicitly on
    every globally executed cycle.
    """

    def __init__(self, runtime: "ShardRuntime") -> None:
        self._runtime = runtime

    def step(self, cycle: int) -> None:
        self._runtime._exchange_deliveries(cycle)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        return None

    def state(self) -> dict:
        return {}

    def load_state(self, state: dict) -> None:
        pass


class ShardRuntime:
    """Drives one worker's slice of a sharded :class:`MeshNetwork`."""

    def __init__(self, network, world: ShardWorld) -> None:
        engine = network.engine
        if engine.mode != "event":
            raise ValueError("sharded execution requires engine='event'")
        if network._shard is not None:
            raise ValueError("network already has a shard runtime")
        if network.tracer is not None:
            raise ValueError("install the shard runtime before enabling "
                             "tracing")
        self.net = network
        self.engine = engine
        self.world = world
        self.rank = world.rank
        self.transport = world.transport
        self.plan = ShardPlan(network.mesh, world.size)
        self.owned_nodes = self.plan.owned_nodes(self.rank)
        self.owned = frozenset(self.owned_nodes)
        #: boundary link -> rank that owns its sink router.
        self._sink_owner = {
            link: self.plan.owner(self.plan.sink_of[link])
            for link in self.plan.boundary_links
        }
        # Registration orders (network registers host then router per
        # node): host(i) -> 2i, router(i) -> 2i+1.  Used to tag
        # delivery/trace origins so cross-worker merges reproduce the
        # single-process firing order.
        self._host_order = {node: 2 * index for index, node
                            in enumerate(network.mesh.nodes())}
        self._owned_router_orders = frozenset(
            2 * index + 1 for index, node
            in enumerate(network.mesh.nodes()) if node in self.owned)

        # Partition: replicas of foreign routers never step; their
        # hosts still step (replicated regulator/trace state) but skip
        # the inject/drain interactions with their inert router.
        for node in network.mesh.nodes():
            if node not in self.owned:
                engine.set_inert(network.routers[node])
                network.hosts[node].shard_owned = False

        # Wire-level capture hooks inside the link-transfer closures.
        cap = network._shard_capture
        cap.owned = self.owned
        cap.boundary_out = self.plan.boundary_out(self.rank)
        cap.active = True
        self._cap = cap

        # Barrier A: registration index right after hosts/routers,
        # before any watcher installed by fault tolerance / services.
        self._barrier = _DeliveryBarrier(self)
        engine.add_component(self._barrier, local=True)

        # Delivery-log capture (barrier A payload).
        self._orig_log_add = network.log.add
        network.log.add = self._log_add
        self._deliveries: list = []
        self._delivery_seq: dict[int, int] = {}
        self._tail_tags: list = []
        self._record_base = len(network.log.records)

        # Trace buffering (barrier B payload).
        self._trace_buffer: list = []
        self._trace_seq: dict[int, int] = {}

        self._last_epoch = network.monitor_miss_epoch[0]
        engine.post_wiring_hook = self._post_wiring
        network._shard = self

    # -- helpers -------------------------------------------------------

    def owns(self, node) -> bool:
        return node in self.owned

    def make_tracer(self, capacity: int) -> _ShardTracer:
        return _ShardTracer(capacity, self)

    def owned_idle(self) -> bool:
        routers = self.net.routers
        return all(routers[node].idle for node in self.owned_nodes)

    def buffer_trace(self, order: int, item: tuple) -> None:
        seq = self._trace_seq.get(order, 0)
        self._trace_seq[order] = seq + 1
        self._trace_buffer.append((order, seq, item))

    def resync(self) -> None:
        """Reset cycle-local bookkeeping after a checkpoint restore."""
        self._record_base = len(self.net.log.records)
        self._last_epoch = self.net.monitor_miss_epoch[0]
        self._deliveries = []
        self._delivery_seq.clear()
        self._tail_tags.clear()
        self._trace_buffer = []
        self._trace_seq.clear()
        cap = self._cap
        cap.writes.clear()
        cap.touched.clear()
        cap.ack_bumps.clear()

    # -- barrier A: delivery-log convergence ---------------------------

    def _log_add(self, packet, delivered_node=None):
        record = self._orig_log_add(packet, delivered_node=delivered_node)
        origin = self._host_order[delivered_node]
        seq = self._delivery_seq.get(origin, 0)
        self._delivery_seq[origin] = seq + 1
        self._deliveries.append(
            (origin, seq, isinstance(packet, TimeConstrainedPacket),
             packet.meta, delivered_node))
        self._tail_tags.append((origin, seq))
        return record

    def _exchange_deliveries(self, cycle: int) -> None:
        received = self.transport.broadcast(self._deliveries or None)
        foreign: list = []
        for peer in sorted(received):
            ops = received[peer]
            if ops:
                foreign.extend(ops)
        if foreign:
            foreign.sort(key=lambda op: (op[0], op[1]))
            add = self._orig_log_add
            for origin, seq, is_tc, meta, delivered_node in foreign:
                # The dummy packet exists only to carry class + meta
                # into DeliveryLog.add; the explicit meta means no
                # packet-id counter draw, keeping the replicated
                # counter streams identical.
                if is_tc:
                    packet = TimeConstrainedPacket(
                        connection_id=0, header_deadline=0, meta=meta)
                else:
                    packet = BestEffortPacket(0, 0, meta=meta)
                add(packet, delivered_node=delivered_node)
                self._tail_tags.append((origin, seq))
            records = self.net.log.records
            base = self._record_base
            tail = records[base:]
            tags = self._tail_tags
            order = sorted(range(len(tail)), key=tags.__getitem__)
            if order != list(range(len(tail))):
                records[base:] = [tail[i] for i in order]
        self._record_base = len(self.net.log.records)
        self._tail_tags.clear()
        self._deliveries = []
        self._delivery_seq.clear()

    # -- barrier B: boundary exchange (engine post-wiring hook) --------

    def _post_wiring(self, now: int):
        net = self.net
        cap = self._cap
        routers = net.routers

        writes_by_peer: dict[int, list] = {}
        for entry in cap.writes:
            writes_by_peer.setdefault(
                self._sink_owner[entry[0]], []).append(entry)
        monitors = [(link, _monitor_values(net.link_monitors[link]))
                    for link in cap.touched] or None
        epoch = net.monitor_miss_epoch[0]
        epoch_delta = epoch - self._last_epoch
        ack_bumps = list(cap.ack_bumps) or None
        ack_slice = [(link, pending) for link, pending
                     in net._drain_acks.items()
                     if link[0] in self.owned] or None
        trace_ship = None
        if net.tracer is not None and self._trace_buffer:
            router_orders = self._owned_router_orders
            trace_ship = [entry for entry in self._trace_buffer
                          if entry[0] in router_orders
                          or entry[2][1] == DELIVER] or None

        payloads = {}
        for peer in range(self.world.size):
            if peer == self.rank:
                continue
            payloads[peer] = (writes_by_peer.get(peer), monitors,
                              epoch_delta, ack_bumps, ack_slice,
                              trace_ship)
        received = self.transport.exchange(payloads)

        touched: set = set()
        total_delta = 0
        foreign_acks: list = []
        foreign_trace: list = []
        for peer in sorted(received):
            payload = received[peer]
            if payload is None:
                continue
            fwrites, fmon, fdelta, facks, fslice, ftrace = payload
            if fwrites:
                # Addressed to this worker: every write's sink router
                # is owned here.
                for link, phit, ack in fwrites:
                    sink = routers[self.plan.sink_of[link]]
                    sink.link_in[OPPOSITE[link[1]]] = LinkSignal(
                        phit=phit, ack=ack)
                    touched.add(sink)
            if fmon:
                for link, values in fmon:
                    _apply_monitor(net.link_monitors[link], values)
            total_delta += fdelta
            if fslice:
                for link, pending in fslice:
                    net._drain_acks[link] = pending
            if facks:
                foreign_acks.extend(facks)
            if ftrace:
                foreign_trace.extend(ftrace)
        net.monitor_miss_epoch[0] = epoch + total_delta

        # Increments after the authoritative slice overwrites: our own
        # captured bumps first (the target key's owner slice just wiped
        # the local provisional bump), then everyone else's.
        drain_acks = net._drain_acks
        if cap.ack_bumps:
            for link in cap.ack_bumps:
                drain_acks[link] = drain_acks.get(link, 0) + 1
        for link in foreign_acks:
            drain_acks[link] = drain_acks.get(link, 0) + 1

        tracer = net.tracer
        if tracer is not None and (self._trace_buffer or foreign_trace):
            entries = self._trace_buffer
            entries.extend(foreign_trace)
            entries.sort(key=lambda entry: (entry[0], entry[1]))
            flush = tracer.flush_raw
            for _, _, item in entries:
                flush(item)
            self._trace_buffer = []
            self._trace_seq.clear()

        # The owed spoofed acks for owned links — the single-process
        # source-less wiring, run here so its genuine-ack guard sees
        # the boundary writes that just landed.
        touched.update(net._apply_drain_acks_owned(self.owned))

        cap.writes.clear()
        cap.touched.clear()
        cap.ack_bumps.clear()
        self._last_epoch = net.monitor_miss_epoch[0]
        return touched

    # -- the coordinated run loop --------------------------------------

    def _advance(self, limit: int) -> bool:
        """Jump to the next *globally* scheduled cycle (mirror of
        ``SynchronousEngine._event_advance`` with a min-reduced bound)."""
        engine = self.engine
        bound = self.transport.min_reduce(engine.event_bound())
        if bound is not None and bound <= engine.cycle:
            return False
        jump = limit if bound is None else min(bound, limit)
        if jump <= engine.cycle:
            return False
        engine.cycles_fast_forwarded += jump - engine.cycle
        engine.cycle = jump
        return True

    def _step_cycle(self) -> None:
        engine = self.engine
        engine.schedule_at(self._barrier, engine.cycle)
        engine._event_step_once()

    def run(self, cycles: int) -> int:
        """Coordinated mirror of ``SynchronousEngine.run`` (event mode).

        Every worker executes exactly the cycles on which *any* worker
        has work, so the cycle / stepped / fast-forwarded counters are
        byte-identical to a single-process event run.
        """
        if cycles < 0:
            raise ValueError("cannot run a negative number of cycles")
        engine = self.engine
        target = engine.cycle + cycles
        engine._event_full_requery()
        while engine.cycle < target:
            if self._advance(target):
                continue
            self._step_cycle()
        return engine.cycle

    def run_until(self, predicate, max_cycles: int = 1_000_000) -> int:
        """Coordinated mirror of ``SynchronousEngine.run_until``.

        ``predicate`` is evaluated on every worker and AND-reduced at
        the same points the single-process engine evaluates it, so all
        workers stop (or time out) on the same cycle.
        """
        if max_cycles < 0:
            raise ValueError("max_cycles must be non-negative")
        engine = self.engine
        reduce = self.transport.all_reduce
        if reduce(predicate()):
            return engine.cycle
        deadline = engine.cycle + max_cycles
        engine._event_full_requery()
        while True:
            if engine.cycle >= deadline:
                raise TimeoutError(
                    f"condition not reached within {max_cycles} cycles"
                )
            if self._advance(deadline):
                if reduce(predicate()):
                    return engine.cycle
                continue
            self._step_cycle()
            if reduce(predicate()):
                return engine.cycle

    def merge_invariant_failures(self, local: list) -> list:
        """Collective: merge per-worker invariant failures.

        ``local`` holds ``(node, message)`` pairs for *owned* routers;
        the merged list is ordered by mesh node order — the order a
        single process's full scan would have appended in.
        """
        received = self.transport.broadcast(local or None)
        entries = list(local)
        for peer in sorted(received):
            if received[peer]:
                entries.extend(received[peer])
        if not entries:
            return []
        order = {node: index for index, node
                 in enumerate(self.net.mesh.nodes())}
        entries.sort(key=lambda entry: order[tuple(entry[0])])
        return [message for __, message in entries]

    # -- coordinated checkpoints ---------------------------------------

    def sync_owned_state(self) -> None:
        """Collective: broadcast authoritative owned state.

        After it returns every worker holds the canonical full network
        state — worker 0 can then write an ordinary single-process
        checkpoint document (resumable at *any* shard count), and
        reports reading per-router counters see converged values.
        Must be called between cycles (never mid-cycle), at the same
        point on every worker.
        """
        net = self.net
        ctx = SaveContext()
        payload = {
            "routers": [(node, net.routers[node].state(ctx))
                        for node in self.owned_nodes],
            "metas": ctx.metas_state(),
            "monitors": [(link, _monitor_values(monitor))
                         for link, monitor in net.link_monitors.items()
                         if link[0] in self.owned],
            "acks": [(link, pending) for link, pending
                     in net._drain_acks.items() if link[0] in self.owned],
            "corruptors": [(link, corruptor.state()) for link, corruptor
                           in net._link_corruptors.items()
                           if link[0] in self.owned],
        }
        received = self.transport.broadcast(payload)
        for peer in sorted(received):
            part = received[peer]
            lctx = LoadContext(part["metas"])
            for node, state in part["routers"]:
                net.routers[node].load_state(state, lctx)
            for link, values in part["monitors"]:
                _apply_monitor(net.link_monitors[link], values)
            for link, pending in part["acks"]:
                net._drain_acks[link] = pending
            for link, corruptor_state in part["corruptors"]:
                # In place: the injector and the wire share instances.
                corruptor = net._link_corruptors.get(link)
                if corruptor is not None:
                    corruptor.load_state(corruptor_state)

    # Reports read per-router counters; the pre-report sync is the same
    # collective as the pre-checkpoint one.
    final_sync = sync_owned_state

    def part_state(self) -> dict:
        """This worker's owned slice as a JSON-able document
        (the per-shard checkpoint a :class:`ShardPartStore` writes)."""
        net = self.net
        ctx = SaveContext()
        routers = [[list(node), net.routers[node].state(ctx)]
                   for node in self.owned_nodes]
        return {
            "rank": self.rank,
            "shards": self.world.size,
            "routers": routers,
            "metas": ctx.metas_state(),
            "monitors": [[list(node), direction,
                          list(_monitor_values(monitor))]
                         for (node, direction), monitor
                         in sorted(net.link_monitors.items())
                         if node in self.owned],
            "drain_acks": [[list(node), direction, pending]
                           for (node, direction), pending
                           in sorted(net._drain_acks.items())
                           if node in self.owned],
            "corruptors": [[list(node), direction, corruptor.state()]
                           for (node, direction), corruptor
                           in sorted(net._link_corruptors.items())
                           if node in self.owned],
        }


class ShardPartStore:
    """Checkpoint sink for a non-coordinator shard worker.

    Drives the session's span splitting exactly like the real store
    (same interval, same collective sequence) but writes only this
    worker's owned slice, as an auditable per-shard document under
    ``<directory>/shards/``.  Resume always reads the coordinator's
    full canonical checkpoint; ``full_state`` tells the session not to
    build one here.
    """

    full_state = False

    def __init__(self, directory, rank: int, fingerprint: str) -> None:
        self.directory = Path(directory) / "shards"
        self.rank = rank
        self.fingerprint = fingerprint

    def save(self, cycle: int, state: dict) -> Path:
        document = canonical_dumps({
            "format": CHECKPOINT_FORMAT,
            "kind": "shard-part",
            "fingerprint": self.fingerprint,
            "cycle": cycle,
            "rank": self.rank,
            "state": state,
        })
        path = self.directory / f"part-r{self.rank}-{cycle}.json"
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".part-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(document)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path


def install_shard_runtime(network, world: ShardWorld) -> ShardRuntime:
    """Partition ``network`` across ``world`` (see :class:`ShardRuntime`).

    Must be called immediately after the network is constructed —
    before fault tolerance, services, or tracing are installed — so
    the barrier component's registration index sits between the
    routers and the watchers on every worker.
    """
    return ShardRuntime(network, world)
