"""Inter-shard transport: pre-forked pipe pairs and collective ops.

One :class:`ShardLinks` is created in the coordinating process before
any worker forks; each worker then takes its :class:`ShardTransport`
endpoint (and closes every connection that is not its own, so a peer's
death surfaces as EOF instead of a hang).

All communication is *collective*: every worker executes the identical
sequence of :meth:`ShardTransport.exchange` calls, driven by fully
replicated control flow.  The pairwise exchange is deadlock-free by
construction — for each pair the lower rank sends first and the higher
rank receives first, and all workers walk their peers in ascending
rank order, so among pending pairs the lexicographically smallest is
always executable.
"""

from __future__ import annotations

import multiprocessing
from typing import Optional


class ShardPeerLost(RuntimeError):
    """A peer worker died (or hung past the timeout) mid-exchange."""

    def __init__(self, peer: int) -> None:
        super().__init__(f"shard peer {peer} lost")
        self.peer = peer


class ShardTransport:
    """One worker's endpoint of the all-pairs pipe mesh."""

    #: How long a receive may block before the peer is declared lost.
    #: Generous — a worker can legitimately be deep in a compute span —
    #: but bounded, so a hung (not dead) peer cannot hang the world.
    RECV_TIMEOUT = 600.0

    def __init__(self, rank: int, size: int, conns: dict) -> None:
        self.rank = rank
        self.size = size
        self._conns = conns  # peer rank -> Connection

    # -- point-to-point primitives ------------------------------------

    def _recv(self, conn, peer: int):
        try:
            if not conn.poll(self.RECV_TIMEOUT):
                raise ShardPeerLost(peer)
            return conn.recv()
        except ShardPeerLost:
            raise
        except (EOFError, OSError, ValueError) as exc:
            raise ShardPeerLost(peer) from exc

    def exchange(self, payloads: dict) -> dict:
        """Send ``payloads[peer]`` to each peer; return what they sent.

        Collective: every worker must call it at the same logical
        point.  Missing peers in ``payloads`` send ``None``.
        """
        received: dict = {}
        for peer in sorted(self._conns):
            conn = self._conns[peer]
            try:
                if self.rank < peer:
                    conn.send(payloads.get(peer))
                    received[peer] = self._recv(conn, peer)
                else:
                    received[peer] = self._recv(conn, peer)
                    conn.send(payloads.get(peer))
            except ShardPeerLost:
                raise
            except (EOFError, OSError, ValueError) as exc:
                raise ShardPeerLost(peer) from exc
        return received

    # -- collectives ---------------------------------------------------

    def broadcast(self, payload) -> dict:
        """All-gather: send ``payload`` to every peer, return theirs."""
        return self.exchange({peer: payload for peer in self._conns})

    def broadcast_from(self, root: int, value=None):
        """Every worker returns ``root``'s value (root passes it in)."""
        received = self.broadcast(value if self.rank == root else None)
        return value if self.rank == root else received[root]

    def min_reduce(self, value: Optional[int]) -> Optional[int]:
        """Global minimum where ``None`` means +infinity."""
        received = self.broadcast(value)
        candidates = [v for v in (*received.values(), value)
                      if v is not None]
        return min(candidates) if candidates else None

    def all_reduce(self, flag: bool) -> bool:
        """True iff the flag is true on every worker."""
        received = self.broadcast(bool(flag))
        return bool(flag) and all(received.values())

    def close(self) -> None:
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass


class ShardLinks:
    """All pipe pairs for a world of ``size`` workers (built pre-fork)."""

    def __init__(self, size: int, ctx=None) -> None:
        if ctx is None:
            ctx = multiprocessing.get_context("fork")
        self.size = size
        self._pipes = {}
        for a in range(size):
            for b in range(a + 1, size):
                self._pipes[(a, b)] = ctx.Pipe()

    def endpoint(self, rank: int) -> ShardTransport:
        conns = {}
        for (a, b), (conn_a, conn_b) in self._pipes.items():
            if a == rank:
                conns[b] = conn_a
            elif b == rank:
                conns[a] = conn_b
        return ShardTransport(rank, self.size, conns)

    def prune_to(self, rank: int) -> None:
        """Close every connection not belonging to ``rank``.

        Must run in each process right after fork (and in the parent
        for the ranks it does not run itself): a pipe end left open in
        a third process keeps the kernel buffer alive, turning a dead
        peer's EOF into an infinite hang.
        """
        for (a, b), (conn_a, conn_b) in self._pipes.items():
            if a != rank:
                try:
                    conn_a.close()
                except OSError:
                    pass
            if b != rank:
                try:
                    conn_b.close()
                except OSError:
                    pass

    def close_all(self) -> None:
        for conn_a, conn_b in self._pipes.values():
            for conn in (conn_a, conn_b):
                try:
                    conn.close()
                except OSError:
                    pass


class ShardWorld:
    """One worker's identity: rank, world size, transport endpoint."""

    def __init__(self, rank: int, size: int,
                 transport: ShardTransport) -> None:
        self.rank = rank
        self.size = size
        self.transport = transport
