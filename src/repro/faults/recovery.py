"""Automatic failure recovery: reroute, retransmit, degrade.

The :class:`RecoveryController` is the software layer that turns
detection events into repair actions:

* **Reroute** — on a ``link-failed`` / ``link-dead`` event, every
  channel whose reservation crosses a dead link is re-established on a
  surviving path (unicast) or shortest-path tree (multicast), with
  admission control re-run on the detour.  A channel whose detour
  fails admission — or that has no surviving path — is *degraded*:
  demoted to best-effort delivery with its ``degraded`` flag set.
* **Retransmit** — time-constrained messages are remembered in a
  bounded source-side buffer keyed by ``(label, sequence)``; a message
  none of whose copies was delivered by its deadline (plus margin) is
  re-sent with exponential backoff, up to a retry limit.
* **Drain and retry** — best-effort packets are tracked by packet id;
  a packet overdue whose planned path crosses a known-dead link is
  presumed eaten by the fault (its stalled worm is drained by the
  network's drain mode) and re-sent end-to-end, relayed around the
  dead links through intermediate hosts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.channels.admission import AdmissionError
from repro.channels.routing import RouteError, dimension_ordered_route
from repro.core.ports import RECEPTION
from repro.faults.injector import BABBLE_LABEL
from repro.network.events import LINK_REPAIRED, LinkEvent
from repro.observability.trace import RETRANSMIT

Node = tuple[int, int]
Link = tuple[Node, int]


@dataclass
class _TrackedMessage:
    """One time-constrained message awaiting delivery confirmation."""

    label: str
    payload: bytes
    #: Sequence-number sets, one per send attempt; the message is
    #: confirmed when every destination received all fragments of
    #: some attempt (multicast: each subscriber confirms separately —
    #: one subscriber's copy must not confirm for the others).
    attempts_seqs: list[set[int]]
    destinations: tuple[Node, ...]
    next_check_cycle: int
    retries: int = 0


@dataclass
class _TrackedBestEffort:
    """One best-effort packet awaiting delivery confirmation."""

    source: Node
    destination: Node
    payload: bytes
    label: Optional[str]
    sequence: Optional[int]
    packet_ids: list[int]
    path_links: set[Link]
    next_check_cycle: int
    retries: int = 0


def _route_links(route) -> set[Link]:
    return {(node, port) for node, port in route if port != RECEPTION}


class RecoveryController:
    """Subscribes to link events and keeps traffic flowing around them."""

    def __init__(
        self,
        network,
        *,
        retransmit_limit: int = 4,
        retransmit_buffer: int = 128,
        tc_margin_ticks: int = 8,
        be_timeout_cycles: Optional[int] = None,
        be_retry_limit: int = 3,
    ) -> None:
        self.network = network
        self.manager = network.manager
        self.retransmit_limit = retransmit_limit
        self.retransmit_buffer = retransmit_buffer
        self.tc_margin_ticks = tc_margin_ticks
        self.be_timeout_cycles = (
            be_timeout_cycles if be_timeout_cycles is not None
            else 40 * network.params.slot_cycles
        )
        self.be_retry_limit = be_retry_limit
        #: Links software knows are dead (announced or detected).
        #: Kept in lock-step with ``network.routing_avoid``.
        self.dead_links: set[Link] = set(network.routing_avoid)

        self._messages: deque[_TrackedMessage] = deque()
        self._be_packets: deque[_TrackedBestEffort] = deque()
        #: (label, sequence, delivered_node) triples — per-node, so a
        #: multicast message is only confirmed at subscribers that
        #: actually received it.
        self._delivered_tc: set[tuple[str, int, object]] = set()
        self._delivered_be_ids: set[int] = set()
        self._log_index = 0
        #: Set while the controller itself re-sends, so the send hooks
        #: append to the existing ledger entry instead of opening a
        #: fresh one (which would retry the retry).
        self._resending_tc: Optional[_TrackedMessage] = None
        self._resending_be = False
        #: Memoized earliest ``next_check_cycle`` over all tracked
        #: entries.  Timers only change inside :meth:`step` and the
        #: send hooks, which set the dirty flag; the event scheduler
        #: requeries watchers every executed cycle, so the recompute
        #: must not be O(pending) each time.
        self._timer_bound: Optional[int] = None
        self._timer_dirty = True

        network.events.subscribe(self._on_event)
        network.tc_send_hooks.append(self._on_tc_send)
        network.be_send_hooks.append(self._on_be_send)

    # -- event handling -----------------------------------------------------

    def _on_event(self, event: LinkEvent) -> None:
        if event.kind == LINK_REPAIRED:
            self.dead_links.discard(event.link)
            self.network.routing_avoid.discard(event.link)
            return
        if event.link in self.dead_links:
            return
        self.dead_links.add(event.link)
        self.network.routing_avoid.add(event.link)
        if event.link in self.network.failed_links:
            # Known dead: let stalled wormhole traffic drain out of the
            # fabric instead of blocking its whole path forever.
            self.network.set_link_draining(*event.link)
        self._recover_channels()

    def _recover_channels(self) -> None:
        for channel in list(self.manager.channels):
            if not self._uses_dead_link(channel):
                continue
            try:
                self.network.recover_channel(channel,
                                             failed=self.dead_links)
                self.network.fault_stats.channels_rerouted += 1
            except (RouteError, AdmissionError):
                self.manager.degrade(channel)
                self.network.fault_stats.channels_degraded += 1

    def _uses_dead_link(self, channel) -> bool:
        return any((hop.node, hop.out_port) in self.dead_links
                   for hop in channel.reservation.hops)

    # -- send tracking ------------------------------------------------------

    def _on_tc_send(self, channel, packets, payload: bytes) -> None:
        self._timer_dirty = True
        seqs = {p.meta.sequence for p in packets}
        slot = self.network.params.slot_cycles
        if self._resending_tc is not None:
            entry = self._resending_tc
            # Stamp each re-sent fragment with the *original* attempt's
            # sequence number: retransmission draws fresh sequences, so
            # without this link a re-sent copy reaching an
            # already-delivered destination (multicast: only one
            # subscriber missed it) would be counted as a brand-new
            # delivery by the stats layer.
            original = sorted(entry.attempts_seqs[0])
            resent = sorted(packets, key=lambda p: p.meta.sequence)
            for packet, orig_seq in zip(resent, original):
                packet.meta.retransmit_of = orig_seq
            entry.attempts_seqs.append(seqs)
            resend_deadlines = [p.meta.absolute_deadline for p in packets
                                if p.meta.absolute_deadline is not None]
            if resend_deadlines:
                entry.next_check_cycle = max(
                    entry.next_check_cycle,
                    (max(resend_deadlines) + self.tc_margin_ticks) * slot,
                )
            return
        # Judge lateness against the message's *absolute* deadline: the
        # regulator releases at the logical arrival tick, which can run
        # ahead of real time when the channel is backlogged — a timeout
        # measured from "now" would retransmit messages that are merely
        # still held at the source.
        deadlines = [p.meta.absolute_deadline for p in packets
                     if p.meta.absolute_deadline is not None]
        if deadlines:
            check = (max(deadlines) + self.tc_margin_ticks) * slot
        else:
            check = self.network.cycle \
                + (channel.deadline + self.tc_margin_ticks) * slot
        self._messages.append(_TrackedMessage(
            label=channel.label, payload=payload, attempts_seqs=[seqs],
            destinations=tuple(channel.destinations),
            next_check_cycle=max(check, self.network.cycle + slot),
        ))
        while len(self._messages) > self.retransmit_buffer:
            self._messages.popleft()  # bounded source-side buffer

    def _on_be_send(self, packet) -> None:
        self._timer_dirty = True
        meta = packet.meta
        if (meta.connection_label == BABBLE_LABEL or self._resending_be
                or self._resending_tc is not None):
            return
        width, height = self.network.mesh.width, self.network.mesh.height
        first_hop = ((meta.source[0] + packet.x_offset) % width,
                     (meta.source[1] + packet.y_offset) % height)
        waypoints = [first_hop, *meta.relay_path]
        path_links: set[Link] = set()
        leg_start = meta.source
        for waypoint in waypoints:
            path_links |= _route_links(
                dimension_ordered_route(leg_start, waypoint))
            leg_start = waypoint
        self._be_packets.append(_TrackedBestEffort(
            source=meta.source, destination=meta.destination,
            payload=packet.payload, label=meta.connection_label,
            sequence=meta.sequence, packet_ids=[meta.packet_id],
            path_links=path_links,
            next_check_cycle=self.network.cycle + self.be_timeout_cycles,
        ))
        while len(self._be_packets) > self.retransmit_buffer:
            self._be_packets.popleft()

    # -- per-cycle work -----------------------------------------------------

    def step(self, cycle: int) -> None:
        # Stepping can retire entries or push their timers out.
        self._timer_dirty = True
        self._ingest_log()
        if self._messages:
            self._check_tc(cycle)
        if self._be_packets:
            self._check_be(cycle)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Engine fast-forward contract (see ``docs/performance.md``).

        The controller's scheduled work is its retransmission timers.
        With no tracked traffic there is nothing to do; with unread
        delivery records it must run now (a confirmation could retire a
        pending entry this cycle, exactly as in the per-cycle loop);
        otherwise it sleeps until the earliest timeout check.  New
        deliveries only appear on cycles where a router is active, so
        this verdict is stable across a quiescent span.  The timer
        minimum is memoized: timers only change inside :meth:`step`,
        the send hooks and :meth:`load_state`, all of which set the
        dirty flag, so the event scheduler's per-cycle watcher requery
        stays O(1).
        """
        if not self._messages and not self._be_packets:
            return None
        if len(self.network.log.records) > self._log_index:
            return cycle
        if self._timer_dirty:
            self._timer_bound = min(
                entry.next_check_cycle
                for entry in (*self._messages, *self._be_packets)
            )
            self._timer_dirty = False
        return max(cycle, self._timer_bound)

    def _ingest_log(self) -> None:
        records = self.network.log.records
        while self._log_index < len(records):
            record = records[self._log_index]
            self._log_index += 1
            if record.packet_id is not None:
                self._delivered_be_ids.add(record.packet_id)
            if (record.connection_label is not None
                    and record.sequence is not None):
                self._delivered_tc.add(
                    (record.connection_label, record.sequence,
                     record.delivered_node))

    def _check_tc(self, cycle: int) -> None:
        stats = self.network.fault_stats
        for entry in list(self._messages):
            # Every destination must hold all fragments of some attempt
            # (attempts may cover different subscribers: the original
            # reached one, a retransmission the other).
            confirmed = all(
                any(all((entry.label, seq, node) in self._delivered_tc
                        for seq in seqs)
                    for seqs in entry.attempts_seqs)
                for node in entry.destinations
            )
            if confirmed:
                if entry.retries:
                    stats.retransmit_recovered += 1
                self._messages.remove(entry)
                continue
            if cycle < entry.next_check_cycle:
                continue
            if entry.retries >= self.retransmit_limit:
                stats.retransmit_abandoned += 1
                self._messages.remove(entry)
                continue
            channel = self.manager.find(entry.label)
            if channel is None:
                self._messages.remove(entry)  # torn down; nothing to do
                continue
            entry.retries += 1
            stats.tc_retransmitted += 1
            if self.network.tracer is not None:
                self.network.tracer.emit(
                    cycle, RETRANSMIT, label=entry.label,
                    traffic_class="TC",
                    info={"retries": entry.retries,
                          "degraded": channel.degraded},
                )
            if channel.degraded:
                # The degraded fallback stamps one sequence per message.
                entry.attempts_seqs.append({channel._sequence})
            # Exponential backoff: double the wait per retry.  The send
            # hook raises this further if the re-sent copy's absolute
            # deadline lands later (backlogged regulator).
            timeout = (channel.deadline + self.tc_margin_ticks
                       if not channel.degraded
                       else self.tc_margin_ticks * 4) \
                * self.network.params.slot_cycles
            entry.next_check_cycle = cycle + timeout * (2 ** entry.retries)
            self._resending_tc = entry
            try:
                self.network.send_message(channel, entry.payload)
            except ValueError:
                # Payload no longer fits the (re-admitted) channel spec;
                # give up rather than loop.
                stats.retransmit_abandoned += 1
                self._messages.remove(entry)
                continue
            finally:
                self._resending_tc = None

    def _check_be(self, cycle: int) -> None:
        stats = self.network.fault_stats
        for entry in list(self._be_packets):
            if any(pid in self._delivered_be_ids
                   for pid in entry.packet_ids):
                self._be_packets.remove(entry)
                continue
            if cycle < entry.next_check_cycle:
                continue
            if not (entry.path_links & self.dead_links):
                # Overdue but its path is intact: congestion, not loss.
                # Check again later without burning a retry.
                entry.next_check_cycle = cycle + self.be_timeout_cycles
                continue
            if entry.retries >= self.be_retry_limit:
                self._be_packets.remove(entry)
                continue
            entry.retries += 1
            stats.be_packets_lost += 1
            stats.be_retried += 1
            if self.network.tracer is not None:
                self.network.tracer.emit(
                    cycle, RETRANSMIT, label=entry.label,
                    sequence=entry.sequence, node=entry.source,
                    traffic_class="BE",
                    info={"retries": entry.retries,
                          "destination": list(entry.destination)},
                )
            self._resending_be = True
            try:
                packet = self.network.send_best_effort(
                    entry.source, entry.destination, entry.payload,
                    avoid=self.dead_links,
                    connection_label=entry.label,
                    sequence=entry.sequence,
                )
            except RouteError:
                self._be_packets.remove(entry)
                continue
            finally:
                self._resending_be = False
            entry.packet_ids.append(packet.meta.packet_id)
            waypoints = [
                ((entry.source[0] + packet.x_offset)
                 % self.network.mesh.width,
                 (entry.source[1] + packet.y_offset)
                 % self.network.mesh.height),
                *packet.meta.relay_path,
            ]
            path_links: set[Link] = set()
            leg_start = entry.source
            for waypoint in waypoints:
                path_links |= _route_links(
                    dimension_ordered_route(leg_start, waypoint))
                leg_start = waypoint
            entry.path_links = path_links
            entry.next_check_cycle = (
                cycle + self.be_timeout_cycles * (2 ** entry.retries))

    # -- lifecycle ----------------------------------------------------------

    @property
    def pending_retransmits(self) -> int:
        return len(self._messages)

    @property
    def pending_be_retries(self) -> int:
        return len(self._be_packets)

    def detach(self) -> None:
        self.network.events.unsubscribe(self._on_event)
        self.network.tc_send_hooks.remove(self._on_tc_send)
        self.network.be_send_hooks.remove(self._on_be_send)
        self.network.engine.remove_component(self)

    # -- checkpointing ------------------------------------------------------

    def state(self) -> dict:
        """Checkpoint state: every pending retransmission timer.

        The tracked-message deques keep their insertion order (the
        bounded-buffer eviction pops the oldest entry); the confirmation
        sets are membership-only and are sorted for a stable document.
        The ``_resending_*`` flags are only ever set inside a single
        ``step`` call, so at a checkpoint boundary they are always
        clear and need no saving.
        """
        return {
            "dead_links": sorted([list(node), direction]
                                 for node, direction in self.dead_links),
            "messages": [
                {
                    "label": entry.label,
                    "payload": entry.payload.hex(),
                    "attempts_seqs": [sorted(seqs)
                                      for seqs in entry.attempts_seqs],
                    "destinations": [list(node)
                                     for node in entry.destinations],
                    "next_check_cycle": entry.next_check_cycle,
                    "retries": entry.retries,
                }
                for entry in self._messages
            ],
            "be_packets": [
                {
                    "source": list(entry.source),
                    "destination": list(entry.destination),
                    "payload": entry.payload.hex(),
                    "label": entry.label,
                    "sequence": entry.sequence,
                    "packet_ids": list(entry.packet_ids),
                    "path_links": sorted([list(node), port]
                                         for node, port
                                         in entry.path_links),
                    "next_check_cycle": entry.next_check_cycle,
                    "retries": entry.retries,
                }
                for entry in self._be_packets
            ],
            "delivered_tc": sorted(
                ([label, sequence,
                  list(node) if isinstance(node, tuple) else node]
                 for label, sequence, node in self._delivered_tc),
                key=repr,
            ),
            "delivered_be_ids": sorted(self._delivered_be_ids),
            "log_index": self._log_index,
        }

    def load_state(self, state: dict) -> None:
        """Overlay saved timers; ``dead_links`` stays consistent with
        the network's already-restored ``routing_avoid`` set."""
        self.dead_links.clear()
        self.dead_links.update((tuple(node), direction)
                               for node, direction in state["dead_links"])
        self._messages.clear()
        for entry in state["messages"]:
            self._messages.append(_TrackedMessage(
                label=entry["label"],
                payload=bytes.fromhex(entry["payload"]),
                attempts_seqs=[set(seqs)
                               for seqs in entry["attempts_seqs"]],
                destinations=tuple(tuple(node)
                                   for node in entry["destinations"]),
                next_check_cycle=entry["next_check_cycle"],
                retries=entry["retries"],
            ))
        self._be_packets.clear()
        for entry in state["be_packets"]:
            self._be_packets.append(_TrackedBestEffort(
                source=tuple(entry["source"]),
                destination=tuple(entry["destination"]),
                payload=bytes.fromhex(entry["payload"]),
                label=entry["label"],
                sequence=entry["sequence"],
                packet_ids=list(entry["packet_ids"]),
                path_links={(tuple(node), port)
                            for node, port in entry["path_links"]},
                next_check_cycle=entry["next_check_cycle"],
                retries=entry["retries"],
            ))
        self._delivered_tc = {
            (label, sequence,
             tuple(node) if isinstance(node, list) else node)
            for label, sequence, node in state["delivered_tc"]
        }
        self._delivered_be_ids = set(state["delivered_be_ids"])
        self._log_index = int(state["log_index"])
        self._resending_tc = None
        self._resending_be = False
        self._timer_dirty = True
