"""Deterministic fault schedules.

A :class:`FaultPlan` is pure data: a sorted list of
:class:`FaultEvent` entries saying *what* goes wrong on the fabric and
*when*.  All randomness is resolved up front by :meth:`FaultPlan.random`
from a seed, so a plan — and therefore an entire chaos run — is fully
reproducible from ``(seed, parameters)``.  The
:class:`~repro.faults.injector.FaultInjector` merely executes the
schedule.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.network.topology import Mesh

Node = tuple[int, int]

#: Event kinds.
CUT = "cut"            # permanent link cut (until an explicit repair)
REPAIR = "repair"      # bring a cut link back (the tail of a flap)
CORRUPT = "corrupt"    # install a bit-flip corruptor on a link
DROP = "drop"          # install a whole-packet-drop corruptor on a link
BABBLE = "babble"      # a babbling host fires an unsolicited packet


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action."""

    cycle: int
    kind: str
    node: Node
    direction: int = -1            # link faults; -1 for babble events
    target: Optional[Node] = None  # babble destination
    amount: int = 0                # corrupt/drop budget; babble bytes

    def sort_key(self) -> tuple:
        return (self.cycle, self.kind, self.node, self.direction,
                self.target or (-1, -1), self.amount)


@dataclass
class FaultPlan:
    """An ordered, reproducible schedule of fault events."""

    events: list[FaultEvent] = field(default_factory=list)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=FaultEvent.sort_key)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def cut_links(self) -> set[tuple[Node, int]]:
        """Links the plan cuts at some point (repaired or not)."""
        return {(e.node, e.direction) for e in self.events
                if e.kind == CUT}

    @property
    def permanent_cuts(self) -> set[tuple[Node, int]]:
        """Links cut and never repaired by this plan."""
        repaired = {(e.node, e.direction) for e in self.events
                    if e.kind == REPAIR}
        return self.cut_links - repaired

    def signature(self) -> str:
        """Stable digest of the schedule (determinism checks)."""
        digest = hashlib.sha256()
        for event in self.events:
            digest.update(repr(event.sort_key()).encode())
        return digest.hexdigest()

    @classmethod
    def random(
        cls,
        seed: int,
        width: int,
        height: int,
        *,
        cuts: int = 2,
        flaps: int = 1,
        corruptions: int = 2,
        drops: int = 1,
        babblers: int = 1,
        window: tuple[int, int] = (400, 4000),
        flap_duration: tuple[int, int] = (40, 160),
        babble_count: int = 8,
        babble_period: int = 48,
        corrupt_budget: int = 3,
        drop_budget: int = 2,
    ) -> "FaultPlan":
        """Draw a reproducible schedule for a ``width x height`` mesh.

        Distinct links are used for cuts, flaps, corruption and drops
        so the failure modes stay individually attributable.  The same
        ``(seed, parameters)`` always produces the identical plan.
        """
        rng = random.Random(seed)
        mesh = Mesh(width, height)
        links = [(node, direction) for node, direction, __ in mesh.links()]
        needed = cuts + flaps + corruptions + drops
        if needed > len(links):
            raise ValueError(
                f"plan wants {needed} distinct links but the mesh only "
                f"has {len(links)}"
            )
        chosen = rng.sample(links, needed)
        start, end = window
        if end <= start:
            raise ValueError("fault window must be non-empty")
        events: list[FaultEvent] = []

        def when() -> int:
            return rng.randrange(start, end)

        index = 0
        for __ in range(cuts):
            node, direction = chosen[index]; index += 1
            events.append(FaultEvent(cycle=when(), kind=CUT,
                                     node=node, direction=direction))
        for __ in range(flaps):
            node, direction = chosen[index]; index += 1
            down = when()
            duration = rng.randrange(*flap_duration)
            events.append(FaultEvent(cycle=down, kind=CUT,
                                     node=node, direction=direction))
            events.append(FaultEvent(cycle=down + duration, kind=REPAIR,
                                     node=node, direction=direction))
        for __ in range(corruptions):
            node, direction = chosen[index]; index += 1
            events.append(FaultEvent(
                cycle=when(), kind=CORRUPT, node=node,
                direction=direction,
                amount=rng.randrange(1, corrupt_budget + 1),
            ))
        for __ in range(drops):
            node, direction = chosen[index]; index += 1
            events.append(FaultEvent(
                cycle=when(), kind=DROP, node=node, direction=direction,
                amount=rng.randrange(1, drop_budget + 1),
            ))
        nodes = list(mesh.nodes())
        for __ in range(babblers):
            babbler = rng.choice(nodes)
            first = when()
            for shot in range(babble_count):
                target = rng.choice([n for n in nodes if n != babbler])
                events.append(FaultEvent(
                    cycle=first + shot * babble_period, kind=BABBLE,
                    node=babbler, target=target,
                    amount=rng.randrange(4, 17),
                ))
        return cls(events=events, seed=seed)
