"""Deterministic fault schedules.

A :class:`FaultPlan` is pure data: a sorted list of
:class:`FaultEvent` entries saying *what* goes wrong on the fabric and
*when*.  All randomness is resolved up front by :meth:`FaultPlan.random`
from a seed, so a plan — and therefore an entire chaos run — is fully
reproducible from ``(seed, parameters)``.  The
:class:`~repro.faults.injector.FaultInjector` merely executes the
schedule.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import random
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.network.topology import Mesh

Node = tuple[int, int]

#: Event kinds.
CUT = "cut"            # permanent link cut (until an explicit repair)
REPAIR = "repair"      # bring a cut link back (the tail of a flap)
CORRUPT = "corrupt"    # install a bit-flip corruptor on a link
DROP = "drop"          # install a whole-packet-drop corruptor on a link
BABBLE = "babble"      # a babbling host fires an unsolicited packet

#: All recognised event kinds (file-format validation).
KINDS = (CUT, REPAIR, CORRUPT, DROP, BABBLE)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action."""

    cycle: int
    kind: str
    node: Node
    direction: int = -1            # link faults; -1 for babble events
    target: Optional[Node] = None  # babble destination
    amount: int = 0                # corrupt/drop budget; babble bytes

    def sort_key(self) -> tuple:
        return (self.cycle, self.kind, self.node, self.direction,
                self.target or (-1, -1), self.amount)

    def as_dict(self) -> dict:
        data: dict = {"cycle": self.cycle, "kind": self.kind,
                      "node": list(self.node)}
        if self.direction != -1:
            data["direction"] = self.direction
        if self.target is not None:
            data["target"] = list(self.target)
        if self.amount:
            data["amount"] = self.amount
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultEvent":
        _require(isinstance(data, Mapping),
                 "fault event must be a JSON object")
        known = {"cycle", "kind", "node", "direction", "target", "amount"}
        unknown = sorted(set(data) - known)
        _require(not unknown, f"unknown fault event fields: {unknown}")
        for field_name in ("cycle", "kind", "node"):
            _require(field_name in data,
                     f"fault event needs {field_name!r}")

        def node_of(value: object, what: str) -> Node:
            _require(isinstance(value, (list, tuple)) and len(value) == 2
                     and all(isinstance(c, int) for c in value),
                     f"{what} must be an (x, y) pair, got {value!r}")
            return (value[0], value[1])  # type: ignore[index]

        cycle = data["cycle"]
        _require(isinstance(cycle, int) and cycle >= 0,
                 f"cycle must be a non-negative integer, got {cycle!r}")
        kind = data["kind"]
        _require(kind in KINDS,
                 f"unknown fault kind {kind!r} (expected one of {KINDS})")
        node = node_of(data["node"], "node")
        direction = data.get("direction", -1)
        _require(isinstance(direction, int),
                 f"direction must be an integer, got {direction!r}")
        amount = data.get("amount", 0)
        _require(isinstance(amount, int) and amount >= 0,
                 f"amount must be a non-negative integer, got {amount!r}")
        target: Optional[Node] = None
        if data.get("target") is not None:
            target = node_of(data["target"], "target")
        if kind == BABBLE:
            _require(target is not None, "babble event needs a target")
            _require(direction == -1,
                     "babble events carry no link direction")
        else:
            _require(target is None,
                     f"{kind} events carry no target")
            _require(direction >= 0,
                     f"{kind} event needs a link direction >= 0")
            if kind in (CUT, REPAIR):
                _require(amount == 0,
                         f"{kind} events carry no amount")
            else:
                _require(amount >= 1,
                         f"{kind} event needs a positive budget")
        return cls(cycle=cycle, kind=kind, node=node,  # type: ignore[arg-type]
                   direction=direction, target=target, amount=amount)


@dataclass
class FaultPlan:
    """An ordered, reproducible schedule of fault events."""

    events: list[FaultEvent] = field(default_factory=list)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=FaultEvent.sort_key)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def cut_links(self) -> set[tuple[Node, int]]:
        """Links the plan cuts at some point (repaired or not)."""
        return {(e.node, e.direction) for e in self.events
                if e.kind == CUT}

    @property
    def permanent_cuts(self) -> set[tuple[Node, int]]:
        """Links cut and never repaired by this plan."""
        repaired = {(e.node, e.direction) for e in self.events
                    if e.kind == REPAIR}
        return self.cut_links - repaired

    def signature(self) -> str:
        """Stable digest of the schedule (determinism checks)."""
        digest = hashlib.sha256()
        for event in self.events:
            digest.update(repr(event.sort_key()).encode())
        return digest.hexdigest()

    # -- JSON round-trip ---------------------------------------------------

    def as_dict(self) -> dict:
        data: dict = {"events": [event.as_dict() for event in self.events]}
        if self.seed is not None:
            data["seed"] = self.seed
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        _require(isinstance(data, Mapping),
                 "fault plan must be a JSON object")
        known = {"events", "seed"}
        unknown = sorted(set(data) - known)
        _require(not unknown, f"unknown fault plan fields: {unknown}")
        seed = data.get("seed")
        _require(seed is None or isinstance(seed, int),
                 f"seed must be an integer, got {seed!r}")
        entries = data.get("events", [])
        _require(isinstance(entries, (list, tuple)),
                 "events must be a list")
        events = [FaultEvent.from_dict(entry) for entry in entries]
        keys = [event.sort_key() for event in events]
        duplicates = sorted({key for key in keys if keys.count(key) > 1})
        _require(not duplicates,
                 f"duplicate fault events: {duplicates}")
        plan = cls(events=events, seed=seed)  # type: ignore[arg-type]
        plan._check_cut_windows()
        return plan

    def _check_cut_windows(self) -> None:
        """Reject overlapping cut windows on one link.

        A link's cut window runs from a ``cut`` event to its matching
        ``repair`` (or forever).  A second cut inside an open window, or
        a repair with no open window, is almost always a plan-authoring
        mistake — the injector would silently no-op it (cuts are
        idempotent, repairs of live links do nothing), so the file
        format refuses the ambiguity outright.
        """
        open_cut: dict[tuple[Node, int], int] = {}
        for event in self.events:
            if event.kind not in (CUT, REPAIR):
                continue
            link = (event.node, event.direction)
            if event.kind == CUT:
                _require(link not in open_cut,
                         f"overlapping cut windows on link {link}: cut at "
                         f"cycle {event.cycle} while the cut from cycle "
                         f"{open_cut.get(link)} is still open")
                open_cut[link] = event.cycle
            else:
                _require(link in open_cut,
                         f"repair of link {link} at cycle {event.cycle} "
                         f"without a preceding cut")
                del open_cut[link]

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid fault plan JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> "FaultPlan":
        return cls.from_json(pathlib.Path(path).read_text())

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def random(
        cls,
        seed: int,
        width: int,
        height: int,
        *,
        cuts: int = 2,
        flaps: int = 1,
        corruptions: int = 2,
        drops: int = 1,
        babblers: int = 1,
        window: tuple[int, int] = (400, 4000),
        flap_duration: tuple[int, int] = (40, 160),
        babble_count: int = 8,
        babble_period: int = 48,
        corrupt_budget: int = 3,
        drop_budget: int = 2,
    ) -> "FaultPlan":
        """Draw a reproducible schedule for a ``width x height`` mesh.

        Distinct links are used for cuts, flaps, corruption and drops
        so the failure modes stay individually attributable.  The same
        ``(seed, parameters)`` always produces the identical plan.
        """
        rng = random.Random(seed)
        mesh = Mesh(width, height)
        links = [(node, direction) for node, direction, __ in mesh.links()]
        needed = cuts + flaps + corruptions + drops
        if needed > len(links):
            raise ValueError(
                f"plan wants {needed} distinct links but the mesh only "
                f"has {len(links)}"
            )
        chosen = rng.sample(links, needed)
        start, end = window
        if end <= start:
            raise ValueError("fault window must be non-empty")
        events: list[FaultEvent] = []

        def when() -> int:
            return rng.randrange(start, end)

        index = 0
        for __ in range(cuts):
            node, direction = chosen[index]; index += 1
            events.append(FaultEvent(cycle=when(), kind=CUT,
                                     node=node, direction=direction))
        for __ in range(flaps):
            node, direction = chosen[index]; index += 1
            down = when()
            duration = rng.randrange(*flap_duration)
            events.append(FaultEvent(cycle=down, kind=CUT,
                                     node=node, direction=direction))
            events.append(FaultEvent(cycle=down + duration, kind=REPAIR,
                                     node=node, direction=direction))
        for __ in range(corruptions):
            node, direction = chosen[index]; index += 1
            events.append(FaultEvent(
                cycle=when(), kind=CORRUPT, node=node,
                direction=direction,
                amount=rng.randrange(1, corrupt_budget + 1),
            ))
        for __ in range(drops):
            node, direction = chosen[index]; index += 1
            events.append(FaultEvent(
                cycle=when(), kind=DROP, node=node, direction=direction,
                amount=rng.randrange(1, drop_budget + 1),
            ))
        nodes = list(mesh.nodes())
        for __ in range(babblers):
            babbler = rng.choice(nodes)
            first = when()
            for shot in range(babble_count):
                target = rng.choice([n for n in nodes if n != babbler])
                events.append(FaultEvent(
                    cycle=first + shot * babble_period, kind=BABBLE,
                    node=babbler, target=target,
                    amount=rng.randrange(4, 17),
                ))
        return cls(events=events, seed=seed)
