"""Fault injection, detection and automatic recovery.

The subsystem has four layers (see ``docs/fault_tolerance.md``):

* :mod:`repro.faults.plan` / :mod:`repro.faults.injector` — seeded,
  reproducible fault schedules and the engine component that executes
  them (link cuts, flaps, corruption, packet drops, babbling sources).
* :mod:`repro.faults.watchdog` — link-death detection from missed
  line-level acknowledgements.
* :mod:`repro.faults.recovery` — automatic rerouting (unicast and
  multicast), bounded-buffer retransmission with exponential backoff,
  best-effort drain-and-retry, and graceful degradation.
* :mod:`repro.faults.harness` — the seeded chaos soak used by tests,
  ``scripts/chaos_soak.py`` and the ``chaos`` CLI subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.harness import ChaosConfig, ChaosReport, run_chaos_soak
from repro.faults.injector import (
    BABBLE_LABEL,
    BitFlipCorruptor,
    FaultInjector,
    PacketDropCorruptor,
)
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.recovery import RecoveryController
from repro.faults.watchdog import LinkWatchdog

__all__ = [
    "BABBLE_LABEL",
    "BitFlipCorruptor",
    "ChaosConfig",
    "ChaosReport",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultTolerance",
    "LinkWatchdog",
    "PacketDropCorruptor",
    "RecoveryController",
    "install_fault_tolerance",
    "run_chaos_soak",
]


@dataclass
class FaultTolerance:
    """The installed detection + recovery pair for one network."""

    watchdog: LinkWatchdog
    controller: RecoveryController

    def detach(self) -> None:
        self.controller.detach()
        self.watchdog.detach()


def install_fault_tolerance(
    network,
    *,
    miss_threshold: Optional[int] = None,
    retransmit_limit: int = 4,
    retransmit_buffer: int = 128,
) -> FaultTolerance:
    """Wire watchdog + recovery controller into a network's engine.

    Also switches the routers to *drop and count* packets whose
    connection was torn down mid-flight (the inevitable consequence of
    rerouting around a failure) instead of treating them as protocol
    errors.
    """
    for router in network.routers.values():
        router.drop_unroutable = True
    watchdog = LinkWatchdog(network, miss_threshold=miss_threshold)
    controller = RecoveryController(
        network, retransmit_limit=retransmit_limit,
        retransmit_buffer=retransmit_buffer,
    )
    network.engine.add_component(watchdog)
    network.engine.add_component(controller)
    return FaultTolerance(watchdog=watchdog, controller=controller)
