"""Seeded chaos soak: mixed traffic under injected faults.

One call builds a mesh, establishes a mix of unicast and multicast
real-time channels, keeps periodic time-constrained messages and
background best-effort traffic flowing, replays a seeded
:class:`~repro.faults.plan.FaultPlan` against it, and checks the
fabric's structural invariants along the way.  The resulting
:class:`ChaosReport` carries every counter the acceptance criteria
care about plus a stable signature, so two runs with the same seed can
be compared bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.channels.admission import AdmissionError
from repro.channels.spec import TrafficSpec
from repro.faults.plan import FaultPlan
from repro.network.network import MeshNetwork


@dataclass(frozen=True)
class ChaosConfig:
    """Everything a chaos soak needs, in one reproducible bundle."""

    seed: int = 1234
    width: int = 4
    height: int = 4
    cycles: int = 6000
    settle_cycles: int = 4000
    # Fault mix (see FaultPlan.random).
    cuts: int = 2
    flaps: int = 1
    corruptions: int = 2
    drops: int = 1
    babblers: int = 1
    # Workload.
    unicast_channels: int = 4
    multicast_channels: int = 1
    message_period_ticks: int = 16
    deadline_ticks: int = 64
    be_period_cycles: int = 160
    invariant_check_every: int = 500
    #: Engine scheduling mode ("exact" or "event"); both produce
    #: byte-identical reports — "event" just skips idle work.
    engine: str = "exact"
    #: Worker processes the mesh is partitioned across (see
    #: ``docs/sharding.md``); 1 runs single-process.  Sharded soaks
    #: produce byte-identical reports, so the count is excluded from
    #: the checkpoint fingerprint like the engine mode.
    shards: int = 1


@dataclass
class ChaosReport:
    """Outcome of one chaos soak."""

    seed: int
    cycles: int
    counters: dict[str, int]
    tc_delivered: int
    be_delivered: int
    deadline_misses_total: int
    deadline_misses_undegraded: int
    degraded_labels: list[str]
    rerouted_count: int
    invariant_failures: list[str]
    channels_established: int
    faults_fired: int
    #: Per-class delivery-latency histogram states (see
    #: :meth:`repro.observability.Histogram.state`); lets campaign
    #: aggregation answer latency percentiles across many soaks.
    #: Not part of :meth:`signature` — the signed counters already
    #: pin the outcome, and the signature predates this field.
    latency: dict = field(default_factory=dict)
    #: Establishment rejections tallied by structured
    #: :class:`~repro.channels.admission.AdmissionError` reason.
    #: Excluded from :meth:`signature` for the same reason as
    #: ``latency``.
    admission_rejects: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """The acceptance bar: invariants held and every undegraded
        channel met every deadline."""
        return (not self.invariant_failures
                and self.deadline_misses_undegraded == 0)

    def signature(self) -> str:
        """Stable digest of the observable outcome (determinism check)."""
        payload = json.dumps({
            "seed": self.seed,
            "cycles": self.cycles,
            "counters": dict(sorted(self.counters.items())),
            "tc_delivered": self.tc_delivered,
            "be_delivered": self.be_delivered,
            "misses": self.deadline_misses_total,
            "degraded": sorted(self.degraded_labels),
        }, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def summary_rows(self) -> list[tuple[str, int]]:
        rows = [(name, value) for name, value in
                sorted(self.counters.items()) if value]
        rows += [
            ("tc delivered", self.tc_delivered),
            ("be delivered", self.be_delivered),
            ("deadline misses (undegraded)",
             self.deadline_misses_undegraded),
            ("deadline misses (total)", self.deadline_misses_total),
        ]
        return rows


def _establish_workload(network: MeshNetwork, config: ChaosConfig,
                        rng: random.Random,
                        rejects: Optional[dict[str, int]] = None) -> list:
    """Admit the soak's channel mix; returns the channel handles.

    ``rejects``, when given, tallies failed establishment attempts by
    structured :class:`AdmissionError` reason.
    """
    nodes = list(network.mesh.nodes())
    channels = []
    attempts = 0
    while (len(channels) < config.unicast_channels
           and attempts < config.unicast_channels * 4):
        attempts += 1
        src, dst = rng.sample(nodes, 2)
        try:
            channels.append(network.establish_channel(
                src, dst, TrafficSpec(i_min=config.message_period_ticks),
                deadline=config.deadline_ticks,
                label=f"chaos-u{len(channels)}",
            ))
        except AdmissionError as exc:
            if rejects is not None:
                rejects[exc.reason] = rejects.get(exc.reason, 0) + 1
            continue
    attempts = 0
    while (len(nodes) >= 3
           and len(channels) < config.unicast_channels
           + config.multicast_channels
           and attempts < config.multicast_channels * 4):
        attempts += 1
        src, *dsts = rng.sample(nodes, 3)
        try:
            channels.append(network.establish_channel(
                src, dsts, TrafficSpec(i_min=config.message_period_ticks),
                deadline=config.deadline_ticks,
                label=f"chaos-m{len(channels)}",
            ))
        except AdmissionError as exc:
            if rejects is not None:
                rejects[exc.reason] = rejects.get(exc.reason, 0) + 1
            continue
    return channels


def run_chaos_soak(config: ChaosConfig,
                   plan: Optional[FaultPlan] = None, *,
                   check_every: Optional[int] = None,
                   store=None, interval: Optional[int] = None,
                   ) -> ChaosReport:
    """Run one seeded chaos soak and report what happened.

    Deterministic: the workload schedule, the fault plan, and the
    simulation itself are all driven from ``config.seed``, so the same
    configuration always yields the identical report signature.

    The driving loop lives in
    :class:`repro.checkpoint.sessions.ChaosSession`; passing ``store``
    (a :class:`~repro.checkpoint.CheckpointStore`) checkpoints the run
    every ``interval`` cycles without changing its outcome, and
    ``check_every`` overrides the config's invariant-check period.
    """
    from repro.checkpoint.sessions import (
        DEFAULT_CHECKPOINT_INTERVAL,
        ChaosSession,
    )

    if getattr(config, "shards", 1) > 1:
        from repro.shard import run_chaos_sharded

        return run_chaos_sharded(config, plan,
                                 check_every=check_every,
                                 store=store, interval=interval)
    session = ChaosSession(config, plan=plan, check_every=check_every)
    return session.run(store=store,
                       interval=(DEFAULT_CHECKPOINT_INTERVAL
                                 if interval is None else interval))
