"""Fault injection: executing a :class:`FaultPlan` against a network.

The injector is an engine component; each cycle it fires the plan's
events that have come due.  Corruption is modelled at the wire: a
*corruptor* installed on a directed link sees every phit crossing it
and may mangle or suppress it.  Two corruptors cover the interesting
failure modes:

* :class:`BitFlipCorruptor` flips one payload bit per packet — caught
  by the end-to-end checksum and dropped at the receiving port.
* :class:`PacketDropCorruptor` suppresses whole packets head-to-tail —
  silent loss, caught only by the recovery layer's retransmission
  timeouts.
"""

from __future__ import annotations

from typing import Optional

from repro.core.packet import BE_HEADER_BYTES, Phit
from repro.core.params import TC_HEADER_BYTES
from repro.faults.plan import (
    BABBLE,
    CORRUPT,
    CUT,
    DROP,
    REPAIR,
    FaultEvent,
    FaultPlan,
)

#: Label carried by babbling-source traffic so the recovery layer's
#: retry ledger ignores it (nobody wants babble retransmitted).
BABBLE_LABEL = "babble"


class BitFlipCorruptor:
    """Flips one bit in the first payload byte of passing packets.

    Headers are left intact — corrupting a routing offset or a
    connection id would turn a data-integrity fault into a misroute,
    which is a different experiment.  The flip budget is per packet;
    once exhausted the corruptor passes traffic through untouched.
    """

    def __init__(self, packets: int = 1, bit: int = 0x01) -> None:
        if packets < 1:
            raise ValueError("corruption budget must be positive")
        if not 1 <= bit <= 0xFF:
            raise ValueError("bit mask must fit in one byte")
        self.remaining = packets
        self.bit = bit
        self.corrupted = 0

    def __call__(self, phit: Phit) -> Optional[Phit]:
        if self.remaining <= 0:
            return phit
        header = TC_HEADER_BYTES if phit.vc == "TC" else BE_HEADER_BYTES
        if phit.index != header:
            return phit
        self.remaining -= 1
        self.corrupted += 1
        return Phit(vc=phit.vc, byte=phit.byte ^ self.bit,
                    packet=phit.packet, index=phit.index, last=phit.last)

    def state(self) -> dict:
        """Checkpoint state (see :func:`corruptor_from_state`)."""
        return {"kind": "bitflip", "remaining": self.remaining,
                "bit": self.bit, "corrupted": self.corrupted}

    def load_state(self, state: dict) -> None:
        self.remaining = int(state["remaining"])
        self.bit = int(state["bit"])
        self.corrupted = int(state["corrupted"])


class PacketDropCorruptor:
    """Suppresses whole packets, head byte through tail byte.

    State is kept per virtual channel because a link interleaves
    time-constrained and best-effort phits cycle by cycle; within one
    virtual channel a packet's phits are contiguous, so tracking a
    single in-progress drop per channel is exact.
    """

    def __init__(self, packets: int = 1, vc: Optional[str] = None) -> None:
        if packets < 1:
            raise ValueError("drop budget must be positive")
        if vc not in (None, "TC", "BE"):
            raise ValueError("vc must be None, 'TC' or 'BE'")
        self.remaining = packets
        self.vc = vc
        self.dropped = 0
        self._dropping = {"TC": False, "BE": False}

    def __call__(self, phit: Phit) -> Optional[Phit]:
        if self._dropping[phit.vc]:
            if phit.last:
                self._dropping[phit.vc] = False
                self.dropped += 1
            return None
        if (phit.index == 0 and self.remaining > 0
                and (self.vc is None or phit.vc == self.vc)):
            self.remaining -= 1
            if phit.last:
                self.dropped += 1
            else:
                self._dropping[phit.vc] = True
            return None
        return phit

    def state(self) -> dict:
        """Checkpoint state (see :func:`corruptor_from_state`)."""
        return {"kind": "drop", "remaining": self.remaining,
                "vc": self.vc, "dropped": self.dropped,
                "dropping": dict(self._dropping)}

    def load_state(self, state: dict) -> None:
        self.remaining = int(state["remaining"])
        self.vc = state["vc"]
        self.dropped = int(state["dropped"])
        self._dropping = {"TC": bool(state["dropping"]["TC"]),
                          "BE": bool(state["dropping"]["BE"])}


def corruptor_from_state(state: dict):
    """Rebuild a corruptor from its checkpoint state.

    The ``kind`` tag picks the class; the instance is constructed with
    a placeholder budget and then overlaid, because a checkpoint may
    capture an exhausted corruptor (``remaining == 0``) that the
    constructors would reject.
    """
    kind = state["kind"]
    if kind == "bitflip":
        corruptor = BitFlipCorruptor()
    elif kind == "drop":
        corruptor = PacketDropCorruptor(vc=state["vc"])
    else:
        raise ValueError(f"unknown corruptor kind {kind!r}")
    corruptor.load_state(state)
    return corruptor


class FaultInjector:
    """Engine component that replays a fault plan against a network."""

    def __init__(self, network, plan: FaultPlan) -> None:
        self.network = network
        self.plan = plan
        self.fired: list[FaultEvent] = []
        self.corruptors: dict[tuple, object] = {}
        self._index = 0

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self.plan.events)

    def step(self, cycle: int) -> None:
        events = self.plan.events
        while self._index < len(events) and events[self._index].cycle <= cycle:
            self._fire(events[self._index])
            self._index += 1

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Engine fast-forward contract: the next scheduled fault.

        Fault events fire on their exact planned cycles even across
        fast-forwarded spans — the engine never skips past the cycle
        reported here.
        """
        if self._index >= len(self.plan.events):
            return None
        return max(cycle, self.plan.events[self._index].cycle)

    def _fire(self, event: FaultEvent) -> None:
        """Execute one due event.

        Overlap semantics on a single link are pinned (and unit-tested
        in ``tests/faults/test_overlap.py``):

        * ``cut`` of an already-failed link is a no-op — cuts are
          idempotent, and the later ``repair`` still restores the link.
        * ``repair`` of a link that is not failed is a no-op
          (``Network.repair_link`` returns early).
        * a second ``corrupt``/``drop`` on a link *replaces* the
          installed corruptor — last write wins and any unspent budget
          of the previous corruptor is discarded, so budgets never
          silently merge across events.
        * corruptors are wire properties, independent of link state:
          they survive cut/repair cycles on the same link.

        Plans loaded from JSON reject overlapping cut windows outright
        (:meth:`FaultPlan.from_dict`); these rules govern what the
        injector does when handed such a plan programmatically.
        """
        network = self.network
        link = (event.node, event.direction)
        if event.kind == CUT:
            if link not in network.failed_links:
                # Silent cut: no announcement — detection is the
                # watchdog's job.
                network.fail_link(event.node, event.direction,
                                  announce=False)
        elif event.kind == REPAIR:
            network.repair_link(event.node, event.direction)
        elif event.kind == CORRUPT:
            corruptor = BitFlipCorruptor(packets=max(1, event.amount))
            self.corruptors[link] = corruptor
            network.set_link_corruptor(event.node, event.direction,
                                       corruptor)
        elif event.kind == DROP:
            corruptor = PacketDropCorruptor(packets=max(1, event.amount))
            self.corruptors[link] = corruptor
            network.set_link_corruptor(event.node, event.direction,
                                       corruptor)
        elif event.kind == BABBLE:
            # An unsolicited burst from a misbehaving host.  Routed
            # blindly (babblers do not consult failure maps) and
            # labelled so the recovery layer never retries it.
            network.send_best_effort(
                event.node, event.target,
                payload=b"\xbb" * max(1, event.amount),
                connection_label=BABBLE_LABEL,
            )
        else:
            raise ValueError(f"unknown fault kind {event.kind!r}")
        self.fired.append(event)

    def detach(self) -> None:
        """Remove the injector from the network's engine."""
        self.network.engine.remove_component(self)

    # -- checkpointing -----------------------------------------------------

    def state(self) -> dict:
        """Checkpoint state.  The plan itself is rebuilt from its seed
        and parameters (it is pure data), so only the replay position
        and the links carrying our corruptors are saved; the corruptor
        *states* live with the network, which owns the wire.
        """
        return {
            "index": self._index,
            "corruptor_links": sorted(
                [list(node), direction]
                for node, direction in self.corruptors
            ),
        }

    def load_state(self, state: dict) -> None:
        """Restore the replay position.

        Must run after the network's own restore: corruptor entries are
        re-referenced from the network so the injector and the wire
        share one instance per link, exactly as when it was installed.
        """
        self._index = int(state["index"])
        self.fired = list(self.plan.events[:self._index])
        self.corruptors = {}
        for node, direction in state["corruptor_links"]:
            link = (tuple(node), direction)
            corruptor = self.network.link_corruptor(*link)
            if corruptor is not None:
                self.corruptors[link] = corruptor
