"""Link-death detection from missed line-level acknowledgements.

The chip's links are synchronous: every phit offered to a healthy link
is clocked across and (for best-effort traffic) acknowledged.  The
:class:`~repro.network.network.LinkMonitor` in the wiring layer counts
consecutive phits that were *offered but never made it* — the hardware
symptom of a dead line.  The watchdog declares a link dead once that
count crosses a threshold (default: one full time-constrained packet's
worth of transfers) and publishes a ``link-dead`` event for the
recovery controller.

A link with no traffic offered is indistinguishable from a healthy
idle link — exactly like real hardware, silent cuts are only detected
when something tries to cross them.
"""

from __future__ import annotations

from typing import Optional

from repro.network.events import (
    LINK_DEAD,
    LINK_FAILED,
    LINK_REPAIRED,
    LinkEvent,
)

Link = tuple[tuple[int, int], int]


class LinkWatchdog:
    """Engine component that turns missed-transfer counts into events."""

    def __init__(self, network, miss_threshold: Optional[int] = None) -> None:
        self.network = network
        #: Missed transfers before a link is declared dead.  One lost
        #: time-constrained packet (20 consecutive missed phits) is the
        #: default — short enough to catch failures within a packet
        #: time, long enough that a single glitch does not kill a link.
        self.miss_threshold = (miss_threshold if miss_threshold is not None
                               else network.params.tc_packet_bytes)
        if self.miss_threshold < 1:
            raise ValueError("miss threshold must be positive")
        #: Links currently considered dead -> cycle of the declaration
        #: (or of the administrative announcement).
        self.dead: dict[Link, int] = {}
        #: Bumped whenever ``dead`` changes; half of the verdict-cache
        #: key below.
        self._dead_version = 0
        #: Cached scan verdict keyed on ``(monitor_miss_epoch,
        #: dead_version)``: miss counters only *grow* through the
        #: wiring layer (which bumps the network's epoch), so an
        #: unchanged key means no link can have newly crossed the
        #: threshold and the cached verdict is still safe.  Counter
        #: *resets* (healthy transfer, repair) do not bump the epoch —
        #: they can only turn a fire-now verdict into a spurious no-op
        #: step, never suppress a detection.
        self._verdict_cache: Optional[tuple[int, int, bool]] = None
        network.events.subscribe(self._on_event)

    def _on_event(self, event: LinkEvent) -> None:
        if event.kind == LINK_REPAIRED:
            self.dead.pop(event.link, None)
            self._dead_version += 1
        elif event.kind == LINK_FAILED:
            # Administrative failures are already known network-wide;
            # remember them so we do not re-announce the same link.
            self.dead.setdefault(event.link, event.cycle)
            self._dead_version += 1

    def step(self, cycle: int) -> None:
        for link, monitor in self.network.link_monitors.items():
            if link in self.dead:
                continue
            if monitor.missed_transfers >= self.miss_threshold:
                self.dead[link] = cycle
                self._dead_version += 1
                self.network.fault_stats.links_detected += 1
                self.network.events.emit(LinkEvent(
                    kind=LINK_DEAD, node=link[0], direction=link[1],
                    cycle=cycle,
                ))

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Engine fast-forward contract (see ``docs/performance.md``).

        Miss counters only grow when a sender offers phits to a dead
        link — which requires an active router — so while the fabric is
        quiescent the verdict is stable: the watchdog needs a step
        *now* if some live link has already crossed the threshold
        (detection must fire on this cycle, exactly as in the per-cycle
        loop), and otherwise has nothing scheduled.  The event
        scheduler requeries watchers after every executed cycle, so
        the full-scan verdict is cached behind the miss-epoch /
        dead-set key (O(1) on the hot path).
        """
        epoch = self.network.monitor_miss_epoch[0]
        cache = self._verdict_cache
        if cache is not None and cache[0] == epoch \
                and cache[1] == self._dead_version:
            return cycle if cache[2] else None
        fire_now = any(
            monitor.missed_transfers >= self.miss_threshold
            for link, monitor in self.network.link_monitors.items()
            if link not in self.dead
        )
        self._verdict_cache = (epoch, self._dead_version, fire_now)
        return cycle if fire_now else None

    def detach(self) -> None:
        self.network.events.unsubscribe(self._on_event)
        self.network.engine.remove_component(self)

    # -- checkpointing -----------------------------------------------------

    def state(self) -> dict:
        return {"dead": sorted([list(node), direction, cycle]
                               for (node, direction), cycle
                               in self.dead.items())}

    def load_state(self, state: dict) -> None:
        self.dead.clear()
        for node, direction, cycle in state["dead"]:
            self.dead[(tuple(node), direction)] = cycle
        # Resume rebuilds the monitors too: any cached verdict is stale.
        self._dead_version += 1
        self._verdict_cache = None
